//! End-to-end optimizer properties: any plan the optimizer emits,
//! under any memory budget, must execute to the same result as a
//! brute-force in-memory oracle.

use mq_catalog::Catalog;
use mq_common::{DataType, EngineConfig, Row, SimClock, Value};
use mq_exec::{run_to_vec, ExecContext};
use mq_memory::MemoryManager;
use mq_optimizer::{recost, Optimizer};
use mq_plan::LogicalPlan;
use mq_stats::HistogramKind;
use mq_storage::Storage;
use proptest::prelude::*;

/// Fact (fk1, fk2, v) with two dimensions; random contents.
struct World {
    catalog: Catalog,
    storage: Storage,
    cfg: EngineConfig,
    fact: Vec<(i64, i64, i64)>,
    dim1: Vec<(i64, i64)>,
    dim2: Vec<(i64, i64)>,
}

fn build_world(
    fact: Vec<(i64, i64, i64)>,
    dim1: Vec<(i64, i64)>,
    dim2: Vec<(i64, i64)>,
    analyze: bool,
    index: bool,
) -> World {
    let cfg = EngineConfig {
        buffer_pool_pages: 16,
        query_memory_bytes: 64 * 1024,
        ..EngineConfig::default()
    };
    let storage = Storage::new(&cfg, SimClock::new());
    let catalog = Catalog::new();
    catalog
        .create_table(
            &storage,
            "fact",
            vec![
                ("fk1", DataType::Int),
                ("fk2", DataType::Int),
                ("v", DataType::Int),
            ],
        )
        .unwrap();
    catalog
        .create_table(
            &storage,
            "dim1",
            vec![("pk", DataType::Int), ("x", DataType::Int)],
        )
        .unwrap();
    catalog
        .create_table(
            &storage,
            "dim2",
            vec![("pk", DataType::Int), ("y", DataType::Int)],
        )
        .unwrap();
    for &(a, b, v) in &fact {
        catalog
            .insert_row(
                &storage,
                "fact",
                Row::new(vec![Value::Int(a), Value::Int(b), Value::Int(v)]),
            )
            .unwrap();
    }
    for &(p, x) in &dim1 {
        catalog
            .insert_row(
                &storage,
                "dim1",
                Row::new(vec![Value::Int(p), Value::Int(x)]),
            )
            .unwrap();
    }
    for &(p, y) in &dim2 {
        catalog
            .insert_row(
                &storage,
                "dim2",
                Row::new(vec![Value::Int(p), Value::Int(y)]),
            )
            .unwrap();
    }
    if analyze {
        for t in ["fact", "dim1", "dim2"] {
            catalog
                .analyze(&storage, t, HistogramKind::MaxDiff, 8, 128, 7)
                .unwrap();
        }
    }
    if index {
        catalog.create_index(&storage, "dim1", "pk").unwrap();
        catalog.create_index(&storage, "dim2", "pk").unwrap();
    }
    World {
        catalog,
        storage,
        cfg,
        fact,
        dim1,
        dim2,
    }
}

/// Run a query; rows are canonicalized to `columns` order (physical
/// plans are free to emit any column arrangement).
fn run(world: &World, q: &LogicalPlan, budget: usize, columns: &[&str]) -> Vec<String> {
    let optimizer = Optimizer::new(world.cfg.clone());
    let mut opt = optimizer
        .optimize(q, &world.catalog, &world.storage)
        .unwrap();
    let mm = MemoryManager::with_budget(budget);
    mm.allocate(&mut opt.plan, &world.cfg).unwrap();
    recost(&mut opt.plan, &world.cfg);
    let ctx = ExecContext::new(world.storage.clone(), SimClock::new(), world.cfg.clone());
    let idx: Vec<usize> = columns
        .iter()
        .map(|c| opt.plan.schema.index_of(c).unwrap())
        .collect();
    let mut rows: Vec<String> = run_to_vec(&opt.plan, &ctx)
        .unwrap()
        .iter()
        .map(|r| r.project(&idx).to_string())
        .collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-dimension star query: optimizer output equals the triple
    /// nested-loop oracle, for analyzed and unanalyzed catalogs, with
    /// and without indexes, across budgets.
    #[test]
    fn star_query_matches_oracle(
        fact in prop::collection::vec((0i64..12, 0i64..8, 0i64..40), 0..150),
        dim1 in prop::collection::vec((0i64..12, 0i64..20), 0..25),
        dim2 in prop::collection::vec((0i64..8, 0i64..20), 0..20),
        vmax in 0i64..40,
        analyze in any::<bool>(),
        index in any::<bool>(),
        budget_pages in 8usize..64,
    ) {
        let world = build_world(fact, dim1, dim2, analyze, index);
        let q = LogicalPlan::scan_filtered(
            "fact",
            mq_expr::cmp(mq_expr::CmpOp::Lt, mq_expr::col("fact.v"), mq_expr::lit(vmax)),
        )
        .join(LogicalPlan::scan("dim1"), vec![("fact.fk1", "dim1.pk")])
        .join(LogicalPlan::scan("dim2"), vec![("fact.fk2", "dim2.pk")]);

        let got = run(
            &world,
            &q,
            budget_pages * world.cfg.page_size,
            &["fact.fk1", "fact.fk2", "fact.v", "dim1.pk", "dim1.x", "dim2.pk", "dim2.y"],
        );

        let mut oracle: Vec<String> = Vec::new();
        for &(a, b, v) in &world.fact {
            if v >= vmax {
                continue;
            }
            for &(p1, x) in &world.dim1 {
                if p1 != a {
                    continue;
                }
                for &(p2, y) in &world.dim2 {
                    if p2 == b {
                        oracle.push(
                            Row::new(vec![
                                Value::Int(a), Value::Int(b), Value::Int(v),
                                Value::Int(p1), Value::Int(x),
                                Value::Int(p2), Value::Int(y),
                            ])
                            .to_string(),
                        );
                    }
                }
            }
        }
        oracle.sort();
        prop_assert_eq!(got, oracle);
    }

    /// Aggregation on top of a join agrees with the oracle's group
    /// count, regardless of budget.
    #[test]
    fn grouped_star_matches_oracle(
        fact in prop::collection::vec((0i64..10, 0i64..6, 0i64..5), 0..120),
        dim1 in prop::collection::vec((0i64..10, 0i64..4), 0..20),
        budget_pages in 8usize..32,
    ) {
        let world = build_world(fact, dim1, vec![(0, 0)], true, false);
        let q = LogicalPlan::scan("fact")
            .join(LogicalPlan::scan("dim1"), vec![("fact.fk1", "dim1.pk")])
            .aggregate(
                vec!["dim1.x"],
                vec![mq_plan::AggExpr {
                    func: mq_plan::AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                }],
            );
        let got = run(&world, &q, budget_pages * world.cfg.page_size, &["dim1.x", "n"]);

        use std::collections::HashMap;
        let mut counts: HashMap<i64, i64> = HashMap::new();
        for &(a, _, _) in &world.fact {
            for &(p, x) in &world.dim1 {
                if p == a {
                    *counts.entry(x).or_default() += 1;
                }
            }
        }
        let mut oracle: Vec<String> = counts
            .into_iter()
            .map(|(x, n)| Row::new(vec![Value::Int(x), Value::Int(n)]).to_string())
            .collect();
        oracle.sort();
        prop_assert_eq!(got, oracle);
    }
}
