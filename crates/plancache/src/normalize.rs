//! SQL normalization: canonicalize query text into a family key.
//!
//! Two queries belong to the same *family* when they differ only in
//! whitespace, identifier case, WHERE-clause literal values, or the
//! order of top-level WHERE conjuncts. The normalizer folds all four
//! away: it re-renders the token stream with single spaces and
//! lower-cased words, replaces each WHERE-clause literal with `?`
//! (capturing its value and, where recognizable, the column and
//! operator it constrains into a [`LiteralSlot`]), and sorts the
//! parameterized top-level conjuncts into a deterministic order.
//! Conjunct sorting only applies when the WHERE body has no depth-0
//! `or`: AND binds tighter than OR, so reordering around an `or`
//! would merge semantically different predicates into one key — such
//! bodies keep their textual order (still parameterized).
//!
//! Literals *outside* the WHERE clause (select-list constants,
//! `LIMIT n`) stay verbatim in the key: they change the plan's shape
//! or output, so they separate families instead of parameterizing one.

use mq_common::Value;
use mq_sql::{tokenize, Token};

/// One parameterized literal: the value bound in this query's text,
/// plus the predicate signature (bare column name and column-on-left
/// operator) when the surrounding tokens made it recognizable. The
/// signature steers occurrence matching when a plan template is
/// captured; `None` fields match anything.
#[derive(Debug, Clone, PartialEq)]
pub struct LiteralSlot {
    /// The literal value as written in this query.
    pub value: Value,
    /// Bare (unqualified) column the literal constrains, if evident.
    pub column: Option<String>,
    /// Operator in column-on-left normal form (`5 < a` records `>`),
    /// if evident. Rendered like the SQL tokens: `= <> < <= > >=`.
    pub op: Option<String>,
}

/// A normalized query: the family cache key and the literal vector to
/// rebind into a cached plan template. Slot order follows the *sorted*
/// conjunct order, so family members always agree on it.
#[derive(Debug, Clone, PartialEq)]
pub struct NormalizedQuery {
    /// Canonical key: lower-cased, single-spaced, WHERE literals as
    /// `?`, top-level WHERE conjuncts sorted.
    pub key: String,
    /// The literal values this query binds, in key order.
    pub slots: Vec<LiteralSlot>,
}

/// Normalize a SQL string, or `None` when the text is not a cacheable
/// SELECT (non-SELECT statements, tokenizer errors). `None` means
/// "plan it the ordinary way", never an error — the parser reports
/// real problems to the user.
pub fn normalize(sql: &str) -> Option<NormalizedQuery> {
    let tokens = tokenize(sql).ok()?;
    normalize_tokens(&tokens).map(|(norm, _)| norm)
}

/// [`normalize`] over a pre-tokenized statement, additionally returning
/// each slot's token index in the original stream (slot `i` came from
/// `tokens[positions[i]]`). The prepared-statement layer uses the
/// positions to splice positional parameters back into the text without
/// re-normalizing.
pub(crate) fn normalize_tokens(tokens: &[Token]) -> Option<(NormalizedQuery, Vec<usize>)> {
    if !tokens.first().is_some_and(|t| t.is_kw("select")) {
        return None;
    }

    // Locate the top-level WHERE region: from the depth-0 `where` to
    // the next depth-0 clause keyword (or end of statement).
    let mut depth = 0i32;
    let mut where_start = None;
    let mut where_end = tokens.len();
    for (i, t) in tokens.iter().enumerate() {
        match t {
            Token::Symbol('(') => depth += 1,
            Token::Symbol(')') => depth -= 1,
            Token::Word(w) if depth == 0 => {
                if where_start.is_none() && w == "where" {
                    where_start = Some(i);
                } else if where_start.is_some() && matches!(w.as_str(), "group" | "order" | "limit")
                {
                    where_end = i;
                    break;
                }
            }
            _ => {}
        }
    }

    let Some(ws) = where_start else {
        // No WHERE clause: the whole statement is the key, no slots.
        return Some((
            NormalizedQuery {
                key: render(tokens),
                slots: Vec::new(),
            },
            Vec::new(),
        ));
    };

    // Split the WHERE region into top-level conjuncts. An `and` at
    // paren depth 0 splits, unless it belongs to a pending BETWEEN.
    // A depth-0 `or` forbids splitting entirely: AND binds tighter
    // than OR, so the depth-0 `and`s are not all top-level conjuncts
    // and sorting the pieces would conflate e.g. `a = 1 or b = 2 and
    // c = 3` (a OR (b AND c)) with `c = 3 and a = 1 or b = 2`
    // ((c AND a) OR b). Such bodies stay one verbatim piece — still
    // parameterized, but textual order is part of the key.
    let body = &tokens[ws + 1..where_end];
    let mut conjuncts: Vec<(usize, &[Token])> = Vec::new();
    let mut depth = 0i32;
    let mut pending_between = false;
    let mut has_top_or = false;
    let mut start = 0;
    for (i, t) in body.iter().enumerate() {
        match t {
            Token::Symbol('(') => depth += 1,
            Token::Symbol(')') => depth -= 1,
            Token::Word(w) if depth == 0 && w == "or" => has_top_or = true,
            Token::Word(w) if depth == 0 && w == "between" => pending_between = true,
            Token::Word(w) if depth == 0 && w == "and" => {
                if pending_between {
                    pending_between = false;
                } else {
                    conjuncts.push((start, &body[start..i]));
                    start = i + 1;
                }
            }
            _ => {}
        }
    }
    conjuncts.push((start, &body[start..]));
    if has_top_or {
        conjuncts = vec![(0, body)];
    }

    // Parameterize each conjunct independently, then sort the rendered
    // forms: `a = 1 and b = 2` and `b = 2 and a = 1` become one key.
    // (A single verbatim OR body sorts trivially.) Each slot keeps the
    // absolute token index it was lifted from.
    let mut parts: Vec<(String, Vec<LiteralSlot>, Vec<usize>)> = conjuncts
        .into_iter()
        .map(|(off, toks)| {
            parameterize_conjunct(toks).map(|(text, slots, local)| {
                let abs = local.into_iter().map(|i| ws + 1 + off + i).collect();
                (text, slots, abs)
            })
        })
        .collect::<Option<Vec<_>>>()?;
    parts.sort_by(|a, b| a.0.cmp(&b.0));

    let mut key = render(&tokens[..ws]);
    key.push_str(" where ");
    let mut slots = Vec::new();
    let mut positions = Vec::new();
    for (i, (text, part_slots, part_pos)) in parts.iter_mut().enumerate() {
        if i > 0 {
            key.push_str(" and ");
        }
        key.push_str(text);
        slots.append(part_slots);
        positions.append(part_pos);
    }
    if where_end < tokens.len() {
        key.push(' ');
        key.push_str(&render(&tokens[where_end..]));
    }
    Some((NormalizedQuery { key, slots }, positions))
}

/// Replace each literal in one conjunct with `?`, extracting its value
/// and predicate signature. Returns the canonical rendering plus the
/// slots in textual order and each slot's token index within `toks`.
fn parameterize_conjunct(toks: &[Token]) -> Option<(String, Vec<LiteralSlot>, Vec<usize>)> {
    let mut rendered: Vec<String> = Vec::with_capacity(toks.len());
    let mut slots = Vec::new();
    let mut positions = Vec::new();
    // BETWEEN state at the conjunct's base depth: after `col between`
    // the first literal is the `>=` bound, the one after `and` is `<=`.
    let mut between_col: Option<String> = None;
    let mut between_hi = false;
    // IN-list state: `col [not] in ( lit, ... )` — every literal inside
    // the list shares the column with an `=` signature.
    let mut in_col: Option<String> = None;
    let mut in_depth = 0i32;
    let mut depth = 0i32;

    for (i, t) in toks.iter().enumerate() {
        match t {
            Token::Symbol('(') => {
                depth += 1;
                rendered.push("(".into());
            }
            Token::Symbol(')') => {
                depth -= 1;
                if in_col.is_some() && depth < in_depth {
                    in_col = None;
                }
                rendered.push(")".into());
            }
            Token::Word(w) if w == "between" => {
                between_col = column_name(i.checked_sub(1).and_then(|j| toks.get(j)));
                between_hi = false;
                rendered.push(w.clone());
            }
            Token::Word(w) if w == "and" && between_col.is_some() && !between_hi => {
                between_hi = true;
                rendered.push(w.clone());
            }
            Token::Word(w) if w == "in" => {
                let before = if i >= 2 && toks[i - 1].is_kw("not") {
                    toks.get(i - 2)
                } else {
                    i.checked_sub(1).and_then(|j| toks.get(j))
                };
                in_col = column_name(before);
                in_depth = depth + 1;
                rendered.push(w.clone());
            }
            Token::Int(_) | Token::Float(_) | Token::Str(_) => {
                let value = literal_value(t, i.checked_sub(1).and_then(|j| toks.get(j)));
                let (column, op) = signature(toks, i, &between_col, between_hi, &in_col);
                slots.push(LiteralSlot { value, column, op });
                positions.push(i);
                if between_col.is_some() && between_hi {
                    between_col = None; // the `<=` bound closes the BETWEEN
                }
                rendered.push("?".into());
            }
            other => rendered.push(render_token(other)),
        }
    }
    Some((rendered.join(" "), slots, positions))
}

/// The literal's [`Value`], honoring a preceding `date` keyword the
/// way the parser does (`date '1998-09-02'` → `Value::Date`). A
/// malformed date string falls back to a plain string value — the
/// parser will reject the query anyway.
fn literal_value(t: &Token, prev: Option<&Token>) -> Value {
    match t {
        Token::Int(n) => Value::Int(*n),
        Token::Float(f) => Value::Float(*f),
        Token::Str(s) => {
            if prev.is_some_and(|p| p.is_kw("date")) {
                if let Some(d) = parse_date(s) {
                    return d;
                }
            }
            Value::Str(s.clone().into())
        }
        _ => unreachable!("literal_value called on non-literal"),
    }
}

/// `yyyy-mm-dd` → `Value::Date`, mirroring the parser's DATE literal.
fn parse_date(s: &str) -> Option<Value> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return None;
    }
    let y: i64 = parts[0].parse().ok()?;
    let m: u32 = parts[1].parse().ok()?;
    let d: u32 = parts[2].parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(mq_common::value::date(y, m, d))
}

/// Predicate signature for the literal at `toks[i]`: the bare column
/// it constrains and the column-on-left operator, when the local token
/// shape makes them evident. Unrecognized shapes yield `(None, None)`
/// — a wildcard during occurrence matching, never an error.
fn signature(
    toks: &[Token],
    i: usize,
    between_col: &Option<String>,
    between_hi: bool,
    in_col: &Option<String>,
) -> (Option<String>, Option<String>) {
    if let Some(col) = between_col {
        let op = if between_hi { "<=" } else { ">=" };
        return (Some(col.clone()), Some(op.into()));
    }
    if let Some(col) = in_col {
        return (Some(col.clone()), Some("=".into()));
    }
    // `col op LIT` — skip a `date` keyword between op and literal.
    let j = match toks.get(i.wrapping_sub(1)) {
        Some(t) if t.is_kw("date") => i.wrapping_sub(2),
        _ => i.wrapping_sub(1),
    };
    if let (Some(Token::Op(op)), prev) = (toks.get(j), toks.get(j.wrapping_sub(1))) {
        if let Some(col) = column_name(prev) {
            return (Some(col), Some(op.clone()));
        }
    }
    // `LIT op col` — flip into column-on-left form.
    if let (Some(Token::Op(op)), Some(col)) = (toks.get(i + 1), column_name(toks.get(i + 2))) {
        return (Some(col), Some(flip_op(op).into()));
    }
    (None, None)
}

fn flip_op(op: &str) -> &'static str {
    match op {
        "<" => ">",
        "<=" => ">=",
        ">" => "<",
        ">=" => "<=",
        "<>" => "<>",
        _ => "=",
    }
}

/// Bare column name of an identifier token (`t.a` → `a`), or `None`
/// for anything else.
fn column_name(t: Option<&Token>) -> Option<String> {
    match t {
        Some(Token::Word(w)) => Some(w.clone()),
        Some(Token::QualifiedWord(w)) => Some(w.rsplit('.').next().unwrap_or(w).to_string()),
        _ => None,
    }
}

/// Canonical single-spaced rendering of a token slice.
pub(crate) fn render(toks: &[Token]) -> String {
    toks.iter().map(render_token).collect::<Vec<_>>().join(" ")
}

fn render_token(t: &Token) -> String {
    match t {
        Token::Word(w) | Token::QualifiedWord(w) => w.clone(),
        Token::Int(n) => n.to_string(),
        Token::Float(f) => format!("{f:?}"),
        Token::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Token::Symbol(c) => c.to_string(),
        Token::Op(o) => o.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_and_whitespace_fold() {
        let a = normalize("SELECT a FROM t WHERE a = 5").unwrap();
        let b = normalize("select   a\nfrom T where A=5").unwrap();
        assert_eq!(a.key, b.key);
        assert_eq!(a.slots, b.slots);
    }

    #[test]
    fn literals_parameterize_with_signatures() {
        let n = normalize("select a from t where t.a >= 10 and s = 'x'").unwrap();
        assert!(n.key.contains('?'), "{}", n.key);
        assert!(!n.key.contains("10"), "literal leaked into key: {}", n.key);
        assert_eq!(n.slots.len(), 2);
        // Sorted conjunct order: `s = ?` before `t.a >= ?`.
        assert_eq!(n.slots[0].value, Value::Str("x".into()));
        assert_eq!(n.slots[0].column.as_deref(), Some("s"));
        assert_eq!(n.slots[0].op.as_deref(), Some("="));
        assert_eq!(n.slots[1].value, Value::Int(10));
        assert_eq!(n.slots[1].column.as_deref(), Some("a"));
        assert_eq!(n.slots[1].op.as_deref(), Some(">="));
    }

    #[test]
    fn conjunct_order_folds() {
        let a = normalize("select a from t where a = 1 and b > 2").unwrap();
        let b = normalize("select a from t where b > 9 and a = 7").unwrap();
        assert_eq!(a.key, b.key);
        // Slot order follows the sorted key, identically for both.
        assert_eq!(a.slots[0].column, b.slots[0].column);
        assert_eq!(a.slots[1].column, b.slots[1].column);
    }

    #[test]
    fn or_precedence_separates_families() {
        // a OR (b AND c) vs (c AND a) OR b — conjunct sorting must not
        // collapse these onto one key.
        let a = normalize("select a from t where a = 1 or b = 2 and c = 3").unwrap();
        let b = normalize("select a from t where c = 3 and a = 1 or b = 2").unwrap();
        assert_ne!(a.key, b.key);
        // Likewise flipped disjuncts: textual order is part of the key.
        let c = normalize("select a from t where a = 1 or b = 2").unwrap();
        let d = normalize("select a from t where b = 2 or a = 1").unwrap();
        assert_ne!(c.key, d.key);
    }

    #[test]
    fn or_bodies_still_parameterize() {
        let a = normalize("select a from t where a = 1 or b = 2 and c = 3").unwrap();
        let b = normalize("select a from t where a = 9 or b = 8 and c = 7").unwrap();
        assert_eq!(a.key, b.key, "same text shape, different literals");
        assert_eq!(a.slots.len(), 3);
        assert_eq!(a.slots[0].column.as_deref(), Some("a"));
        assert_eq!(a.slots[1].column.as_deref(), Some("b"));
        assert_eq!(a.slots[2].column.as_deref(), Some("c"));
        // Parenthesized ORs below depth 0 don't disable conjunct sorting.
        let e = normalize("select a from t where (a = 1 or b = 2) and c = 3").unwrap();
        let f = normalize("select a from t where c = 9 and (a = 8 or b = 7)").unwrap();
        assert_eq!(e.key, f.key);
    }

    #[test]
    fn flipped_comparison_normalizes_column_left() {
        let n = normalize("select a from t where 5 < a").unwrap();
        assert_eq!(n.slots[0].column.as_deref(), Some("a"));
        assert_eq!(n.slots[0].op.as_deref(), Some(">"));
    }

    #[test]
    fn between_yields_two_bounds() {
        let n = normalize("select a from t where a between 10 and 20 and b = 1").unwrap();
        assert_eq!(n.slots.len(), 3);
        let a_slots: Vec<_> = n
            .slots
            .iter()
            .filter(|s| s.column.as_deref() == Some("a"))
            .collect();
        assert_eq!(a_slots.len(), 2);
        assert_eq!(a_slots[0].op.as_deref(), Some(">="));
        assert_eq!(a_slots[1].op.as_deref(), Some("<="));
    }

    #[test]
    fn date_literals_become_dates() {
        let n = normalize("select a from t where d <= date '1998-09-02'").unwrap();
        assert!(matches!(n.slots[0].value, Value::Date(_)));
        assert_eq!(n.slots[0].op.as_deref(), Some("<="));
    }

    #[test]
    fn select_list_and_limit_literals_stay_in_key() {
        let a = normalize("select a + 1 from t where b = 2 limit 5").unwrap();
        let b = normalize("select a + 1 from t where b = 3 limit 5").unwrap();
        let c = normalize("select a + 1 from t where b = 2 limit 9").unwrap();
        assert_eq!(a.key, b.key, "WHERE literal must parameterize");
        assert_ne!(a.key, c.key, "LIMIT literal must separate families");
        assert_eq!(a.slots.len(), 1);
    }

    #[test]
    fn different_shapes_never_collide() {
        let a = normalize("select a from t where a = 5").unwrap();
        let b = normalize("select a from t where b = 5").unwrap();
        let c = normalize("select a from t where a < 5").unwrap();
        let d = normalize("select a, b from t where a = 5").unwrap();
        assert_ne!(a.key, b.key);
        assert_ne!(a.key, c.key);
        assert_ne!(a.key, d.key);
    }

    #[test]
    fn non_select_is_uncacheable() {
        assert!(normalize("insert into t values (1)").is_none());
        assert!(normalize("").is_none());
        assert!(normalize("select a from t where x = 'unterminated").is_none());
    }
}
