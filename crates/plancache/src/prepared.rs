//! Prepared statements: normalize once, rebind positional parameters.
//!
//! [`PreparedSql::new`] runs the normalizer exactly once over a
//! template statement written with exemplar literals (`... WHERE a = 5
//! AND s = 'x'`). Each WHERE-clause literal becomes a positional
//! parameter, numbered in *textual* order — the order a user reading
//! the statement would count them in — even though the normalized
//! slot vector follows the sorted-conjunct canonical order.
//!
//! [`PreparedSql::bind`] then splices a parameter vector into both
//! representations in O(tokens): the member SQL text (literal tokens
//! replaced, statement re-rendered) and the member [`NormalizedQuery`]
//! (canonical slots with the new values). Neither the tokenizer state
//! machine nor the conjunct sorter runs again — binding is the hot
//! path the plan cache's probe consumes directly.

use mq_common::value::days_to_civil;
use mq_common::{MqError, Result, Value};
use mq_sql::{tokenize, Token};

use crate::normalize::{normalize_tokens, render};
use crate::{coerce_like, rebindable, NormalizedQuery};

/// A normalized statement template with positional-parameter metadata.
#[derive(Debug, Clone)]
pub struct PreparedSql {
    /// The template's token stream (exemplar literals in place).
    tokens: Vec<Token>,
    /// Canonical normalization of the template.
    norm: NormalizedQuery,
    /// Canonical slot `i` was lifted from `tokens[positions[i]]`.
    positions: Vec<usize>,
    /// Textual parameter rank `r` → canonical slot index.
    text_order: Vec<usize>,
}

/// A statement with parameters bound: the member SQL text (for the
/// parser — recovery manifests need a faithful logical plan) and the
/// member normalization (for the plan-cache probe).
#[derive(Debug, Clone)]
pub struct BoundSql {
    /// Re-rendered member SQL with the parameters spliced in.
    pub sql: String,
    /// The member's normalized form — same key as the template,
    /// parameter values in the canonical slots.
    pub norm: NormalizedQuery,
}

impl PreparedSql {
    /// Normalize a template statement. `None` when the text is not a
    /// normalizable SELECT — only statements the plan cache can key are
    /// preparable (everything else gains nothing from preparation).
    pub fn new(sql: &str) -> Option<PreparedSql> {
        let tokens = tokenize(sql).ok()?;
        let (norm, positions) = normalize_tokens(&tokens)?;
        let mut text_order: Vec<usize> = (0..positions.len()).collect();
        text_order.sort_by_key(|&i| positions[i]);
        Some(PreparedSql {
            tokens,
            norm,
            positions,
            text_order,
        })
    }

    /// Number of positional parameters (WHERE-clause literals).
    pub fn param_count(&self) -> usize {
        self.norm.slots.len()
    }

    /// The template's plan-cache family key.
    pub fn key(&self) -> &str {
        &self.norm.key
    }

    /// The template SQL, canonically rendered.
    pub fn template_sql(&self) -> String {
        render(&self.tokens)
    }

    /// Splice `params` (in textual order) into the template. Refuses
    /// arity mismatches and type drift — an Int may stand in for a
    /// Float exemplar (promoted), but a Str can never replace a Date:
    /// the template plan compared dtypes the optimizer chose indexes
    /// by.
    pub fn bind(&self, params: &[Value]) -> Result<BoundSql> {
        if params.len() != self.norm.slots.len() {
            return Err(MqError::Plan(format!(
                "prepared statement expects {} parameters, got {}",
                self.norm.slots.len(),
                params.len()
            )));
        }
        let mut slots = self.norm.slots.clone();
        let mut tokens = self.tokens.clone();
        for (r, p) in params.iter().enumerate() {
            let si = self.text_order[r];
            let old = &self.norm.slots[si].value;
            if !rebindable(old, p) {
                return Err(MqError::TypeMismatch(format!(
                    "prepared-statement parameter {} expects a value compatible with {old}, got {p}",
                    r + 1
                )));
            }
            let v = coerce_like(p, old);
            tokens[self.positions[si]] = value_token(&v)?;
            slots[si].value = v;
        }
        Ok(BoundSql {
            sql: render(&tokens),
            norm: NormalizedQuery {
                key: self.norm.key.clone(),
                slots,
            },
        })
    }
}

/// The token a bound parameter renders as. Dates render back to their
/// `yyyy-mm-dd` string — the template keeps the `date` keyword token in
/// front of the slot, so the member text parses as a DATE literal again.
fn value_token(v: &Value) -> Result<Token> {
    match v {
        Value::Int(n) => Ok(Token::Int(*n)),
        Value::Float(f) => Ok(Token::Float(*f)),
        Value::Str(s) => Ok(Token::Str(s.to_string())),
        Value::Date(d) => {
            let (y, m, day) = days_to_civil(*d);
            Ok(Token::Str(format!("{y:04}-{m:02}-{day:02}")))
        }
        other => Err(MqError::TypeMismatch(format!(
            "cannot bind {other} as a prepared-statement parameter"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::normalize;

    #[test]
    fn params_are_textual_order_even_when_conjuncts_sort() {
        // Canonical key sorts `s = ?` before `t.a >= ?`, but positional
        // parameters follow the text: param 1 is the `a` bound.
        let p = PreparedSql::new("select a from t where t.a >= 10 and s = 'x'").unwrap();
        assert_eq!(p.param_count(), 2);
        let b = p.bind(&[Value::Int(42), Value::str("y")]).unwrap();
        assert!(b.sql.contains("42"), "{}", b.sql);
        assert!(b.sql.contains("'y'"), "{}", b.sql);
        // The member normalizes onto the template's key with the new
        // values in the canonical slots.
        let renorm = normalize(&b.sql).unwrap();
        assert_eq!(renorm.key, p.key());
        assert_eq!(renorm.slots, b.norm.slots);
    }

    #[test]
    fn bind_refuses_arity_and_type_drift() {
        let p = PreparedSql::new("select a from t where a = 5").unwrap();
        assert!(p.bind(&[]).is_err());
        assert!(p.bind(&[Value::Int(1), Value::Int(2)]).is_err());
        assert!(p.bind(&[Value::str("no")]).is_err());
        assert!(p.bind(&[Value::Int(7)]).is_ok());
    }

    #[test]
    fn date_params_roundtrip_through_text() {
        let p = PreparedSql::new("select a from t where d <= date '1998-09-02'").unwrap();
        let b = p.bind(&[mq_common::value::date(1995, 6, 17)]).unwrap();
        assert!(b.sql.contains("date '1995-06-17'"), "{}", b.sql);
        let renorm = normalize(&b.sql).unwrap();
        assert_eq!(renorm.key, p.key());
        assert_eq!(renorm.slots[0].value, mq_common::value::date(1995, 6, 17));
    }

    #[test]
    fn non_select_is_not_preparable() {
        assert!(PreparedSql::new("insert into t values (1)").is_none());
        assert!(PreparedSql::new("").is_none());
    }

    #[test]
    fn int_promotes_into_float_slot() {
        let p = PreparedSql::new("select a from t where v > 2.5").unwrap();
        let b = p.bind(&[Value::Int(3)]).unwrap();
        // Promoted to the template's Float dtype in both text and slots.
        assert_eq!(b.norm.slots[0].value, Value::Float(3.0));
        assert!(b.sql.contains("3.0"), "{}", b.sql);
    }
}
