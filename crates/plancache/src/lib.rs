//! # mq-plancache — normalized SQL plan cache
//!
//! The re-optimization engine (and the mq-cache materialization layer
//! under it) still pays full parsing, binding and DP join enumeration
//! for every run of a repeated query family. This crate removes that
//! cost: a [`NormalizedQuery`] key (case/whitespace folding, literal
//! parameterization, deterministic conjunct ordering — see
//! [`normalize`]) maps a whole family to one [`CachedPlan`] holding
//! the optimized physical plan *template* plus the occurrence→slot
//! binding needed to splice a later query's literals into it. A probe
//! that hits rebinds in O(plan) and skips enumeration entirely.
//!
//! Staleness is the engine's call, made through the probe's freshness
//! closure: a cached plan records the base-table data versions and the
//! structural sub-plan fingerprints it was built against; when a write
//! bumps a dependency version or the feedback store accumulates enough
//! corrections against those fingerprints, the probe reports
//! [`PlanProbe::Stale`] and the entry is dropped — the next run pays
//! one full enumeration (the `plan_cache_reoptimized` event) and
//! re-enters a fresh template.
//!
//! Capacity is entry-counted with LRU eviction: plans are metadata,
//! not materialized bytes, so a simple count bound suffices.

mod normalize;
mod prepared;

use std::collections::HashMap;

use mq_expr::{CmpOp, Expr};
use mq_plan::{subplan_fingerprint, PhysOp, PhysPlan};
use parking_lot::Mutex;

pub use normalize::{normalize, LiteralSlot, NormalizedQuery};
pub use prepared::{BoundSql, PreparedSql};

use mq_common::Value;

/// Cumulative counters, for `\plancache stats` and the workload report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PlanCacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Entry capacity (LRU-evicted beyond this).
    pub capacity: usize,
    /// Lifetime probe hits (template rebound, enumeration skipped).
    pub hits: u64,
    /// Lifetime probe misses (no entry, or rebinding was unsafe).
    pub misses: u64,
    /// Lifetime stale re-optimizations (entry dropped on probe because
    /// a dependency version moved or feedback accumulated against it).
    pub stale_reopts: u64,
    /// Lifetime admissions.
    pub insertions: u64,
    /// Lifetime LRU evictions.
    pub evictions: u64,
    /// Probes that found a fresh entry but could not rebind the new
    /// literals safely (counted inside `misses` too).
    pub rebind_failures: u64,
}

/// Why a probe declared an entry stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// Deps and feedback both quiet: the template is servable.
    Fresh,
    /// A dependency table's data version moved since entry.
    StaleWrite,
    /// Feedback corrections against the template's fingerprints passed
    /// the staleness threshold.
    StaleFeedback,
}

/// Result of a plan-cache probe.
pub enum PlanProbe {
    /// Rebound plan ready to execute, plus the optimizer work units
    /// the cold optimization paid (the enumeration cost skipped).
    Hit(Box<PhysPlan>, u64),
    /// The entry went stale and was dropped; re-optimize and re-enter.
    Stale(Freshness),
    /// No entry (or rebinding refused); optimize the ordinary way.
    Miss,
}

/// A cached optimized plan template for one query family.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    plan: PhysPlan,
    /// Occurrence→slot binding, in template literal-visit order.
    binding: Vec<Option<usize>>,
    /// Which slots some occurrence binds — a slot whose value changes
    /// but which no occurrence consumes would silently produce wrong
    /// rows, so rebinding refuses it.
    slot_bound: Vec<bool>,
    /// The literal values the template was captured with.
    slots: Vec<LiteralSlot>,
    /// Base tables (with data versions) the plan reads.
    pub deps: Vec<(String, u64)>,
    /// Structural sub-plan fingerprints — the feedback store's
    /// correction counters against these drive staleness.
    pub fingerprints: Vec<u64>,
    /// Feedback-applied sum over `fingerprints` at capture time.
    pub applied_at: u64,
    /// Optimizer work units the cold optimization charged.
    pub opt_work_units: u64,
    /// A representative member's SQL text (the statement whose cold
    /// optimization produced this template). Snapshots persist it
    /// instead of the physical plan: re-normalizing and re-optimizing
    /// the text at restore reproduces the template against the restored
    /// catalog, so the format never has to version plan internals.
    pub sql: Option<String>,
    last_used: u64,
}

impl CachedPlan {
    /// Capture a template from a freshly optimized plan: clone it,
    /// enumerate its literal occurrences in deterministic visit order,
    /// and match each against the normalized query's slots (preferring
    /// column+operator+value agreement, then column+value, then value
    /// alone; implied-predicate duplicates may share a slot). An
    /// occurrence tying between slots that are not provably the same
    /// predicate stays unbound — rebinding refuses a changed unbound
    /// slot, so ambiguity degrades to a cache miss, never to a literal
    /// spliced into the wrong conjunct. Call *before* collectors,
    /// exchanges or cached-scan splices decorate the plan.
    pub fn capture(
        plan: &PhysPlan,
        norm: &NormalizedQuery,
        opt_work_units: u64,
        deps: Vec<(String, u64)>,
        applied_at: u64,
    ) -> CachedPlan {
        let mut occurrences: Vec<(Option<String>, Option<String>, Value)> = Vec::new();
        let mut template = plan.clone();
        visit_plan_literals(&mut template, &mut |col, op, v| {
            occurrences.push((
                col.map(str::to_string),
                op.map(|o| o.to_string()),
                v.clone(),
            ));
        });

        let mut binding = Vec::with_capacity(occurrences.len());
        let mut used = vec![false; norm.slots.len()];
        let mut slot_bound = vec![false; norm.slots.len()];
        for (col, op, value) in &occurrences {
            let mut scored: Vec<(u32, usize)> = Vec::new();
            for (si, slot) in norm.slots.iter().enumerate() {
                if !values_equal(&slot.value, value) {
                    continue;
                }
                let mut score = 1u32;
                if let (Some(a), Some(b)) = (&slot.column, col) {
                    if a == b {
                        score += 2;
                    }
                }
                if let (Some(a), Some(b)) = (&slot.op, op) {
                    if a == b {
                        score += 1;
                    }
                }
                scored.push((score, si));
            }
            let Some(max) = scored.iter().map(|(s, _)| *s).max() else {
                binding.push(None); // fixed constant, not a family literal
                continue;
            };
            let tied: Vec<usize> = scored
                .iter()
                .filter(|(s, _)| *s == max)
                .map(|(_, si)| *si)
                .collect();
            // Slots tied at the same score are interchangeable only
            // when they all carry one fully-specified column+operator
            // signature (genuinely duplicated predicates). Any other
            // tie — e.g. literals inside arithmetic comparisons, whose
            // occurrences recover no column — is ambiguous: binding
            // either slot could splice one conjunct's literal into the
            // other's position. Refuse the occurrence instead; a later
            // rebind then hits the changed-unbound-slot refusal rather
            // than silently cross-binding.
            let first = &norm.slots[tied[0]];
            let interchangeable = first.column.is_some()
                && first.op.is_some()
                && tied.iter().all(|&si| {
                    norm.slots[si].column == first.column && norm.slots[si].op == first.op
                });
            if tied.len() > 1 && !interchangeable {
                binding.push(None);
                continue;
            }
            // Prefer an unused slot, then the lowest index, for
            // determinism; implied-predicate duplicates may share one.
            let si = tied
                .iter()
                .copied()
                .find(|&si| !used[si])
                .unwrap_or(tied[0]);
            used[si] = true;
            slot_bound[si] = true;
            binding.push(Some(si));
        }

        let fingerprints = structural_fingerprints(&template);
        CachedPlan {
            plan: template,
            binding,
            slot_bound,
            slots: norm.slots.clone(),
            deps,
            fingerprints,
            applied_at,
            opt_work_units,
            sql: None,
            last_used: 0,
        }
    }

    /// Rebind a family member's literals into the template. `None`
    /// when substitution would be unsafe: slot count or value type
    /// drifted, or a changed value belongs to a slot no plan literal
    /// consumes (so the change could not take effect).
    pub fn rebind(&self, slots: &[LiteralSlot]) -> Option<PhysPlan> {
        if slots.len() != self.slots.len() {
            return None;
        }
        for (i, (old, new)) in self.slots.iter().zip(slots).enumerate() {
            if !rebindable(&old.value, &new.value) {
                return None;
            }
            if !self.slot_bound[i] && !values_equal(&old.value, &new.value) {
                return None;
            }
        }
        let mut plan = self.plan.clone();
        let mut k = 0usize;
        visit_plan_literals(&mut plan, &mut |_, _, v| {
            if let Some(Some(si)) = self.binding.get(k) {
                *v = coerce_like(&slots[*si].value, v);
            }
            k += 1;
        });
        Some(plan)
    }
}

/// Structural (non-transparent) sub-plan fingerprints of a template,
/// deduped: the keys feedback corrections are counted under.
fn structural_fingerprints(plan: &PhysPlan) -> Vec<u64> {
    let mut out = Vec::new();
    collect_fps(plan, &mut out);
    out.sort_unstable();
    out.dedup();
    out
}

fn collect_fps(plan: &PhysPlan, out: &mut Vec<u64>) {
    if !matches!(
        plan.op,
        PhysOp::StatsCollector { .. } | PhysOp::Exchange { .. } | PhysOp::CachedScan { .. }
    ) {
        out.push(subplan_fingerprint(plan));
    }
    for c in &plan.children {
        collect_fps(c, out);
    }
}

/// Visit every literal embedded in the plan's operators, in a fixed
/// pre-order: per node, operator expressions first (index bounds
/// before residuals), then children left to right. Capture and rebind
/// both use this walk, so occurrence indexes always line up.
fn visit_plan_literals(
    plan: &mut PhysPlan,
    f: &mut impl FnMut(Option<&str>, Option<CmpOp>, &mut Value),
) {
    match &mut plan.op {
        PhysOp::SeqScan {
            filter: Some(e), ..
        } => visit_expr(e, f),
        PhysOp::IndexScan {
            column,
            lo,
            hi,
            residual,
            ..
        } => {
            if let Some(v) = lo {
                f(Some(column), Some(CmpOp::Ge), v);
            }
            if let Some(v) = hi {
                f(Some(column), Some(CmpOp::Le), v);
            }
            if let Some(e) = residual {
                visit_expr(e, f);
            }
        }
        PhysOp::Filter { predicate } => visit_expr(predicate, f),
        PhysOp::IndexNLJoin {
            residual: Some(e), ..
        } => visit_expr(e, f),
        // Project/aggregate/sort literals are select-list constants —
        // part of the key, never parameterized.
        _ => {}
    }
    for c in &mut plan.children {
        visit_plan_literals(c, f);
    }
}

fn visit_expr(e: &mut Expr, f: &mut impl FnMut(Option<&str>, Option<CmpOp>, &mut Value)) {
    if let Expr::Cmp { op, left, right } = e {
        let op = *op;
        if let Some(name) = expr_col_name(left) {
            if let Expr::Literal(v) = &mut **right {
                f(Some(&name), Some(op), v);
                return;
            }
        }
        if let Some(name) = expr_col_name(right) {
            if let Expr::Literal(v) = &mut **left {
                f(Some(&name), Some(op.flip()), v);
                return;
            }
        }
        visit_expr(left, f);
        visit_expr(right, f);
        return;
    }
    match e {
        Expr::Literal(v) => f(None, None, v),
        Expr::And(es) | Expr::Or(es) => {
            for x in es {
                visit_expr(x, f);
            }
        }
        Expr::Not(x) => visit_expr(x, f),
        Expr::Arith { left, right, .. } => {
            visit_expr(left, f);
            visit_expr(right, f);
        }
        Expr::UdfPred { arg, .. } => visit_expr(arg, f),
        Expr::Column(_) | Expr::BoundColumn { .. } | Expr::Cmp { .. } => {}
    }
}

/// Bare column name of a column-reference expression.
fn expr_col_name(e: &Expr) -> Option<String> {
    let name = match e {
        Expr::Column(n) => n,
        Expr::BoundColumn { name, .. } => name,
        _ => return None,
    };
    Some(name.rsplit('.').next().unwrap_or(name).to_string())
}

/// Literal equality for occurrence matching, with Int/Float coercion
/// (`5` and `5.0` tokenize differently but plan identically).
fn values_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Float(y)) | (Value::Float(y), Value::Int(x)) => *x as f64 == *y,
        (x, y) => x == y,
    }
}

/// May `new` replace a template literal captured as `old`? Same value
/// kind, with one promotion: an Int literal may stand in where the
/// template carried a Float (the substitution promotes it).
fn rebindable(old: &Value, new: &Value) -> bool {
    matches!(
        (old, new),
        (Value::Int(_), Value::Int(_))
            | (Value::Float(_), Value::Float(_))
            | (Value::Float(_), Value::Int(_))
            | (Value::Str(_), Value::Str(_))
            | (Value::Date(_), Value::Date(_))
            | (Value::Bool(_), Value::Bool(_))
    )
}

/// The value to substitute for a template occurrence: `new`, promoted
/// to Float when the template literal was a Float (so typed
/// comparisons in the plan keep their dtype).
fn coerce_like(new: &Value, old: &Value) -> Value {
    match (old, new) {
        (Value::Float(_), Value::Int(n)) => Value::Float(*n as f64),
        _ => new.clone(),
    }
}

struct Inner {
    map: HashMap<String, CachedPlan>,
    capacity: usize,
    stats: PlanCacheStats,
    seq: u64,
}

/// The normalized-SQL plan cache. Cheap to clone (shared interior);
/// one per engine.
#[derive(Clone)]
pub struct PlanCache {
    inner: std::sync::Arc<Mutex<Inner>>,
}

impl PlanCache {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: std::sync::Arc::new(Mutex::new(Inner {
                map: HashMap::new(),
                capacity,
                stats: PlanCacheStats {
                    capacity,
                    ..PlanCacheStats::default()
                },
                seq: 0,
            })),
        }
    }

    /// Probe for the family's template. `fresh` judges the entry's
    /// dependencies and feedback pressure (engine-side state); a stale
    /// verdict drops the entry so the caller's re-optimization can
    /// re-enter a fresh one.
    pub fn probe(
        &self,
        norm: &NormalizedQuery,
        fresh: impl FnOnce(&CachedPlan) -> Freshness,
    ) -> PlanProbe {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        let seq = inner.seq;
        let Some(entry) = inner.map.get_mut(&norm.key) else {
            inner.stats.misses += 1;
            return PlanProbe::Miss;
        };
        match fresh(entry) {
            Freshness::Fresh => match entry.rebind(&norm.slots) {
                Some(plan) => {
                    entry.last_used = seq;
                    let work = entry.opt_work_units;
                    inner.stats.hits += 1;
                    PlanProbe::Hit(Box::new(plan), work)
                }
                None => {
                    // Keep the entry: another family member with
                    // compatible literals may still rebind it. The
                    // caller's re-entry will replace it regardless.
                    inner.stats.misses += 1;
                    inner.stats.rebind_failures += 1;
                    PlanProbe::Miss
                }
            },
            verdict => {
                inner.map.remove(&norm.key);
                inner.stats.stale_reopts += 1;
                PlanProbe::Stale(verdict)
            }
        }
    }

    /// Admit (or replace) the family's template. Returns the keys of
    /// LRU-evicted entries, for event emission.
    pub fn insert(&self, key: &str, mut entry: CachedPlan) -> Vec<String> {
        let mut inner = self.inner.lock();
        inner.seq += 1;
        entry.last_used = inner.seq;
        inner.map.insert(key.to_string(), entry);
        inner.stats.insertions += 1;
        let mut evicted = Vec::new();
        while inner.map.len() > inner.capacity.max(1) {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&victim);
            inner.stats.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Replace the entry capacity; excess entries are LRU-evicted and
    /// their keys returned.
    pub fn set_capacity(&self, capacity: usize) -> Vec<String> {
        {
            let mut inner = self.inner.lock();
            inner.capacity = capacity;
            inner.stats.capacity = capacity;
        }
        // Reuse the insert loop's eviction by running it with no
        // insert: evict until within capacity.
        let mut evicted = Vec::new();
        let mut inner = self.inner.lock();
        while inner.map.len() > inner.capacity && !inner.map.is_empty() {
            let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, (*k).clone()))
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            inner.map.remove(&victim);
            inner.stats.evictions += 1;
            evicted.push(victim);
        }
        evicted
    }

    /// Whether a template is cached for `key` (no LRU touch, no
    /// counter movement — a pure existence check for warm-up code).
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Export the persistable view of the cache: each entry's family
    /// key and representative SQL text, sorted by key for byte-stable
    /// snapshots. Entries captured without a SQL text (plans that
    /// arrived pre-parsed) cannot be rebuilt from text and are skipped.
    pub fn export_sql(&self) -> Vec<(String, String)> {
        let inner = self.inner.lock();
        let mut out: Vec<(String, String)> = inner
            .map
            .iter()
            .filter_map(|(k, e)| e.sql.as_ref().map(|s| (k.clone(), s.clone())))
            .collect();
        out.sort();
        out
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().map.is_empty()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PlanCacheStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.entries = inner.map.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::ScanSpec;

    fn scan_with_filter(filter: Expr) -> PhysPlan {
        let schema = Schema::new(vec![
            Field::qualified("t", "a", DataType::Int),
            Field::qualified("t", "b", DataType::Int),
            Field::qualified("t", "s", DataType::Str),
        ])
        .unwrap();
        let bound = filter.bind(&schema).unwrap();
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: "t".into(),
                    file: FileId(0),
                    pages: 10,
                    rows: 100,
                },
                filter: Some(bound),
            },
            vec![],
            schema,
        );
        p.assign_ids();
        p
    }

    fn norm(sql: &str) -> NormalizedQuery {
        normalize(sql).expect("normalizable")
    }

    #[test]
    fn capture_binds_and_rebinds_literals() {
        use mq_expr::{and, cmp, col, lit};
        let n = norm("select a from t where t.a >= 10 and t.s = 'x'");
        let plan = scan_with_filter(and(vec![
            cmp(CmpOp::Ge, col("t.a"), lit(10i64)),
            cmp(CmpOp::Eq, col("t.s"), lit("x")),
        ]));
        let entry = CachedPlan::capture(&plan, &n, 7, vec![("t".into(), 1)], 0);
        assert_eq!(entry.opt_work_units, 7);
        assert!(entry.slot_bound.iter().all(|b| *b), "{:?}", entry.binding);

        let n2 = norm("select a from t where t.a >= 99 and t.s = 'y'");
        assert_eq!(n.key, n2.key);
        let rebound = entry.rebind(&n2.slots).expect("rebind");
        let mut vals = Vec::new();
        let mut rb = rebound.clone();
        visit_plan_literals(&mut rb, &mut |_, _, v| vals.push(v.clone()));
        assert!(vals.contains(&Value::Int(99)), "{vals:?}");
        assert!(vals.contains(&Value::Str("y".into())), "{vals:?}");
        assert!(!vals.contains(&Value::Int(10)), "{vals:?}");
    }

    #[test]
    fn changed_unbound_slot_refuses_rebind() {
        use mq_expr::{cmp, col, lit};
        let n = norm("select a from t where t.a >= 10 and t.s = 'x'");
        // Plan only carries the `a` literal (say the optimizer proved
        // `s = 'x'` away) — the 'x' slot binds nothing.
        let plan = scan_with_filter(cmp(CmpOp::Ge, col("t.a"), lit(10i64)));
        let entry = CachedPlan::capture(&plan, &n, 1, vec![], 0);

        // Same 'x': safe, only `a` changes.
        let same = norm("select a from t where t.a >= 20 and t.s = 'x'");
        assert!(entry.rebind(&same.slots).is_some());
        // Different 'x': the change cannot take effect — refuse.
        let diff = norm("select a from t where t.a >= 20 and t.s = 'z'");
        assert!(entry.rebind(&diff.slots).is_none());
    }

    #[test]
    fn ambiguous_tie_refuses_cross_bind() {
        use mq_expr::{and, cmp, col, lit, ArithOp};
        let plus1 = |name: &str| Expr::Arith {
            op: ArithOp::Add,
            left: Box::new(col(name)),
            right: Box::new(lit(1i64)),
        };
        // Both conjuncts bury their literal inside an arithmetic
        // comparison, so the plan occurrences recover no column — the
        // two value-5 slots tie at the same score.
        let n = norm("select a from t where b + 1 = 5 and a + 1 = 5");
        let plan = scan_with_filter(and(vec![
            cmp(CmpOp::Eq, plus1("t.b"), lit(5i64)),
            cmp(CmpOp::Eq, plus1("t.a"), lit(5i64)),
        ]));
        let entry = CachedPlan::capture(&plan, &n, 1, vec![], 0);
        // Changing one conjunct's literal must refuse rather than risk
        // splicing the value into the other conjunct's position.
        let changed = norm("select a from t where b + 1 = 7 and a + 1 = 5");
        assert_eq!(n.key, changed.key);
        assert!(entry.rebind(&changed.slots).is_none());
        // Identical literals still rebind: the template is unchanged.
        let same = norm("select a from t where b + 1 = 5 and a + 1 = 5");
        assert!(entry.rebind(&same.slots).is_some());
    }

    #[test]
    fn probe_hit_stale_miss_lifecycle() {
        use mq_expr::{cmp, col, lit};
        let cache = PlanCache::new(4);
        let n = norm("select a from t where t.a = 5");
        assert!(matches!(
            cache.probe(&n, |_| Freshness::Fresh),
            PlanProbe::Miss
        ));
        let plan = scan_with_filter(cmp(CmpOp::Eq, col("t.a"), lit(5i64)));
        let entry = CachedPlan::capture(&plan, &n, 3, vec![("t".into(), 1)], 0);
        assert!(cache.insert(&n.key, entry).is_empty());

        let n2 = norm("select a from t where t.a = 8");
        match cache.probe(&n2, |_| Freshness::Fresh) {
            PlanProbe::Hit(p, work) => {
                assert_eq!(work, 3);
                let mut vals = Vec::new();
                let mut p = *p;
                visit_plan_literals(&mut p, &mut |_, _, v| vals.push(v.clone()));
                assert_eq!(vals, vec![Value::Int(8)]);
            }
            _ => panic!("expected hit"),
        }

        // A stale verdict drops the entry; the next probe misses.
        assert!(matches!(
            cache.probe(&n, |_| Freshness::StaleWrite),
            PlanProbe::Stale(Freshness::StaleWrite)
        ));
        assert!(matches!(
            cache.probe(&n, |_| Freshness::Fresh),
            PlanProbe::Miss
        ));
        let s = cache.stats();
        assert_eq!((s.hits, s.stale_reopts, s.insertions), (1, 1, 1));
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn lru_eviction_beyond_capacity() {
        use mq_expr::{cmp, col, lit};
        let cache = PlanCache::new(2);
        let mut keys = Vec::new();
        for i in 0..3 {
            let n = norm(&format!("select a from t where t.a = 5 limit {i}"));
            let plan = scan_with_filter(cmp(CmpOp::Eq, col("t.a"), lit(5i64)));
            let entry = CachedPlan::capture(&plan, &n, 1, vec![], 0);
            keys.push(n.key.clone());
            let evicted = cache.insert(&n.key, entry);
            if i < 2 {
                assert!(evicted.is_empty());
            } else {
                assert_eq!(evicted, vec![keys[0].clone()], "oldest entry goes");
            }
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn type_drift_refuses_rebind() {
        use mq_expr::{cmp, col, lit};
        let n = norm("select a from t where t.a = 5");
        let plan = scan_with_filter(cmp(CmpOp::Eq, col("t.a"), lit(5i64)));
        let entry = CachedPlan::capture(&plan, &n, 1, vec![], 0);
        let stringy = norm("select a from t where t.a = 'five'");
        assert_eq!(n.key, stringy.key, "both parameterize to the same key");
        assert!(
            entry.rebind(&stringy.slots).is_none(),
            "Int→Str drift must refuse"
        );
    }
}
