//! Parser robustness properties.

use mq_sql::{parse_query, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The tokenizer never panics on arbitrary input.
    #[test]
    fn tokenizer_total(input in ".{0,200}") {
        let _ = tokenize(&input);
    }

    /// The parser never panics on arbitrary input (errors are fine).
    #[test]
    fn parser_total(input in ".{0,200}") {
        let _ = parse_query(&input);
    }

    /// The parser never panics on SQL-ish token soup either.
    #[test]
    fn parser_total_on_sqlish(words in prop::collection::vec(
        prop_oneof![
            Just("select".to_string()),
            Just("from".to_string()),
            Just("where".to_string()),
            Just("group".to_string()),
            Just("by".to_string()),
            Just("order".to_string()),
            Just("and".to_string()),
            Just("or".to_string()),
            Just("not".to_string()),
            Just("between".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(",".to_string()),
            Just("*".to_string()),
            Just("=".to_string()),
            Just("<".to_string()),
            Just("count".to_string()),
            Just("sum".to_string()),
            Just("42".to_string()),
            Just("'str'".to_string()),
            "[a-z]{1,6}",
        ],
        0..25,
    )) {
        let _ = parse_query(&words.join(" "));
    }

    /// Well-formed single-table queries always parse.
    #[test]
    fn wellformed_parse(
        cols in prop::collection::vec("[a-z]{1,8}", 1..4),
        table in "[a-z]{1,8}",
        lit in 0i64..1000,
        limit in 0u64..100,
    ) {
        let sql = format!(
            "SELECT {} FROM {table} WHERE {} < {lit} ORDER BY {} LIMIT {limit}",
            cols.join(", "),
            cols[0],
            cols[0],
        );
        let q = parse_query(&sql).unwrap();
        prop_assert_eq!(q.select.len(), cols.len());
        prop_assert_eq!(q.limit, Some(limit));
    }

    /// Numeric and string literals round-trip through the expression
    /// display (which must itself re-parse).
    #[test]
    fn predicate_display_reparses(a in 0i64..100000, s in "[a-z]{0,10}") {
        let sql = format!("SELECT x FROM t WHERE x = {a} AND y = '{s}' OR z >= {a}");
        let q = parse_query(&sql).unwrap();
        let rendered = q.where_clause.unwrap().to_string();
        // The rendered predicate is itself valid SQL expression syntax.
        let again = parse_query(&format!("SELECT x FROM t WHERE {rendered}"));
        prop_assert!(again.is_ok(), "rendered: {rendered}");
    }
}
