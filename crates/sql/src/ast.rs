//! The statement AST: single-block SELECT plus the small DDL/DML
//! surface (`CREATE TABLE`, `CREATE INDEX`, `INSERT … VALUES`,
//! `ANALYZE`) that makes the engine drivable from SQL alone.

use mq_common::{DataType, Value};
use mq_expr::Expr;
use mq_plan::AggFunc;

/// Any parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Select(Query),
    /// `CREATE TABLE t (a INT, b FLOAT, …)`.
    CreateTable {
        /// Table name.
        name: String,
        /// `(column, type)` pairs in declaration order.
        columns: Vec<(String, DataType)>,
    },
    /// `CREATE INDEX ON t (col)`.
    CreateIndex {
        /// Table name.
        table: String,
        /// Indexed column (bare name).
        column: String,
    },
    /// `INSERT INTO t VALUES (…), (…), …` — literal rows only.
    Insert {
        /// Target table.
        table: String,
        /// Literal rows in statement order.
        rows: Vec<Vec<Value>>,
    },
    /// `ANALYZE t`.
    Analyze {
        /// Table to gather statistics for.
        table: String,
    },
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// A scalar expression with an optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
    /// An aggregate call with an optional alias. `arg = None` is
    /// `COUNT(*)`.
    Agg {
        /// The function.
        func: AggFunc,
        /// The argument (`None` for `COUNT(*)`).
        arg: Option<Expr>,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A parsed single-block query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub select: Vec<SelectItem>,
    /// FROM tables (comma list; join predicates live in WHERE).
    pub from: Vec<String>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY column names.
    pub group_by: Vec<String>,
    /// ORDER BY (column name, ascending) pairs.
    pub order_by: Vec<(String, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
}
