//! # mq-sql — the SQL frontend
//!
//! A tokenizer, recursive-descent parser and binder for the SELECT
//! subset the workload needs (the paper's queries are single-block
//! SELECT/FROM/WHERE/GROUP BY/ORDER BY statements):
//!
//! ```sql
//! SELECT avg(l_extendedprice) AS avg_price, l_returnflag
//! FROM lineitem, orders
//! WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02'
//! GROUP BY l_returnflag
//! ORDER BY l_returnflag
//! LIMIT 10
//! ```
//!
//! [`parse_query`] produces an AST; [`bind`] resolves it against the
//! catalog into a [`LogicalPlan`] ready for the optimizer. Join
//! predicates stay in WHERE (comma-list FROM), exactly how the paper's
//! Figure 1 query is written; the optimizer's decomposition classifies
//! them into join edges.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::{Query, SelectItem, Statement};
pub use binder::bind;
pub use lexer::{tokenize, Token};
pub use parser::{parse_query, parse_statement};

use mq_catalog::Catalog;
use mq_common::Result;
use mq_plan::LogicalPlan;

/// Parse and bind in one step.
///
/// ```
/// use mq_sql::parse_query;
/// let q = parse_query("SELECT a, count(*) AS n FROM t WHERE a < 5 GROUP BY a").unwrap();
/// assert_eq!(q.from, vec!["t"]);
/// assert_eq!(q.group_by, vec!["a"]);
/// ```
pub fn plan_sql(sql: &str, catalog: &Catalog) -> Result<LogicalPlan> {
    let query = parse_query(sql)?;
    bind(&query, catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, EngineConfig, Row, SimClock, Value};
    use mq_storage::Storage;

    fn catalog() -> Catalog {
        let cfg = EngineConfig::default();
        let st = Storage::new(&cfg, SimClock::new());
        let cat = Catalog::new();
        cat.create_table(
            &st,
            "lineitem",
            vec![
                ("l_orderkey", DataType::Int),
                ("l_quantity", DataType::Float),
                ("l_shipdate", DataType::Date),
                ("l_returnflag", DataType::Str),
            ],
        )
        .unwrap();
        cat.create_table(
            &st,
            "orders",
            vec![
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderdate", DataType::Date),
            ],
        )
        .unwrap();
        cat.insert_row(
            &st,
            "lineitem",
            Row::new(vec![
                Value::Int(1),
                Value::Float(10.0),
                mq_common::value::date(1995, 1, 1),
                Value::str("A"),
            ]),
        )
        .unwrap();
        cat
    }

    #[test]
    fn end_to_end_single_table() {
        let cat = catalog();
        let plan = plan_sql(
            "SELECT l_orderkey FROM lineitem WHERE l_quantity < 24 AND l_shipdate >= DATE '1994-01-01'",
            &cat,
        )
        .unwrap();
        let schema = plan.schema(&cat).unwrap();
        assert_eq!(schema.len(), 1);
        assert_eq!(plan.join_count(), 0);
    }

    #[test]
    fn end_to_end_join_group_order() {
        let cat = catalog();
        let plan = plan_sql(
            "SELECT l_returnflag, count(*) AS n, avg(l_quantity) AS q \
             FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND o_orderdate < DATE '1995-03-15' \
             GROUP BY l_returnflag ORDER BY l_returnflag DESC LIMIT 5",
            &cat,
        )
        .unwrap();
        assert_eq!(plan.join_count(), 1);
        let schema = plan.schema(&cat).unwrap();
        assert_eq!(schema.len(), 3);
        assert_eq!(schema.field(1).name.as_ref(), "n");
        let text = plan.to_string();
        assert!(text.contains("Limit 5"));
        assert!(text.contains("Sort"));
        assert!(text.contains("Aggregate"));
    }

    #[test]
    fn star_select() {
        let cat = catalog();
        let plan = plan_sql("SELECT * FROM lineitem", &cat).unwrap();
        assert_eq!(plan.schema(&cat).unwrap().len(), 4);
    }

    #[test]
    fn unknown_table_rejected() {
        let cat = catalog();
        let err = plan_sql("SELECT x FROM missing", &cat).unwrap_err();
        assert_eq!(err.kind(), "not_found");
    }

    #[test]
    fn unknown_column_rejected() {
        let cat = catalog();
        let err = plan_sql("SELECT nope FROM lineitem", &cat).unwrap_err();
        assert_eq!(err.kind(), "not_found");
    }

    #[test]
    fn syntax_error_reported() {
        let cat = catalog();
        let err = plan_sql("SELECT FROM WHERE", &cat).unwrap_err();
        assert_eq!(err.kind(), "parse");
    }
}
