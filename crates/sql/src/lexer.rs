//! SQL tokenizer.

use mq_common::{MqError, Result};

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (lower-cased; SQL is case-insensitive).
    Word(String),
    /// Possibly-qualified identifier containing a dot (`t.a`).
    QualifiedWord(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped).
    Str(String),
    /// Single-char symbol: `( ) , * + - /`
    Symbol(char),
    /// Comparison operator: `= <> < <= > >=`
    Op(String),
}

impl Token {
    /// Is this the given keyword (case-insensitive)?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Word(w) if w == kw)
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | '*' | '+' | '/' => {
                out.push(Token::Symbol(c));
                i += 1;
            }
            '-' => {
                // Comment (`--`) or minus.
                if chars.get(i + 1) == Some(&'-') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    out.push(Token::Symbol('-'));
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Op("=".into()));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Op("<=".into()));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Op("<>".into()));
                    i += 2;
                } else {
                    out.push(Token::Op("<".into()));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Op(">=".into()));
                    i += 2;
                } else {
                    out.push(Token::Op(">".into()));
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                        None => return Err(MqError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                if text.contains('.') {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        MqError::Parse(format!("bad numeric literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        MqError::Parse(format!("bad integer literal '{text}'"))
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut has_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    if chars[i] == '.' {
                        has_dot = true;
                    }
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect::<String>().to_lowercase();
                if has_dot {
                    out.push(Token::QualifiedWord(word));
                } else {
                    out.push(Token::Word(word));
                }
            }
            other => {
                return Err(MqError::Parse(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let toks = tokenize("SELECT a, t.b FROM t WHERE a >= 10.5 AND s = 'o''k'").unwrap();
        assert_eq!(toks[0], Token::Word("select".into()));
        assert_eq!(toks[1], Token::Word("a".into()));
        assert_eq!(toks[2], Token::Symbol(','));
        assert_eq!(toks[3], Token::QualifiedWord("t.b".into()));
        assert!(toks.contains(&Token::Op(">=".into())));
        assert!(toks.contains(&Token::Float(10.5)));
        assert!(toks.contains(&Token::Str("o'k".into())));
    }

    #[test]
    fn comments_skipped() {
        let toks = tokenize("SELECT a -- the column\nFROM t").unwrap();
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn operators() {
        let toks = tokenize("a<>b a<=b a<b a=b a>b a>=b").unwrap();
        let ops: Vec<&Token> = toks.iter().filter(|t| matches!(t, Token::Op(_))).collect();
        assert_eq!(ops.len(), 6);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ; b").is_err());
        assert!(tokenize("1.2.3").is_err());
    }
}
