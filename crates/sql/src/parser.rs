//! Recursive-descent parser for the SELECT subset and the DDL/DML
//! statements (`CREATE TABLE`, `CREATE INDEX`, `INSERT`, `ANALYZE`).

use mq_common::{DataType, MqError, Result, Value};
use mq_expr::{ArithOp, CmpOp, Expr};
use mq_plan::AggFunc;

use crate::ast::{Query, SelectItem, Statement};
use crate::lexer::{tokenize, Token};

/// Parse one SELECT statement.
pub fn parse_query(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parse any statement: SELECT, CREATE TABLE, CREATE INDEX, INSERT,
/// or ANALYZE.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.expect_end()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| MqError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(MqError::Parse(format!(
                "expected '{kw}', found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Symbol(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<()> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(MqError::Parse(format!(
                "expected '{c}', found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump()? {
            Token::Word(w) | Token::QualifiedWord(w) => Ok(w),
            other => Err(MqError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(MqError::Parse(format!(
                "trailing input at token {} ({:?})",
                self.pos, self.tokens[self.pos]
            )))
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            if self.eat_kw("table") {
                return self.create_table();
            }
            if self.eat_kw("index") {
                return self.create_index();
            }
            return Err(MqError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.eat_kw("insert") {
            self.expect_kw("into")?;
            return self.insert();
        }
        if self.eat_kw("analyze") {
            let table = self.ident()?;
            return Ok(Statement::Analyze { table });
        }
        Ok(Statement::Select(self.query()?))
    }

    /// `CREATE TABLE t (a INT, b FLOAT, …)` — already past `CREATE TABLE`.
    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat_symbol(',') {
                break;
            }
        }
        self.expect_symbol(')')?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn data_type(&mut self) -> Result<DataType> {
        let word = self.ident()?;
        match word.as_str() {
            "int" | "integer" | "bigint" => Ok(DataType::Int),
            "float" | "double" | "real" | "decimal" => Ok(DataType::Float),
            "text" | "varchar" | "char" | "string" => Ok(DataType::Str),
            "date" => Ok(DataType::Date),
            "bool" | "boolean" => Ok(DataType::Bool),
            other => Err(MqError::Parse(format!("unknown column type '{other}'"))),
        }
    }

    /// `CREATE INDEX ON t (col)` — already past `CREATE INDEX`.
    fn create_index(&mut self) -> Result<Statement> {
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect_symbol('(')?;
        let column = self.ident()?;
        self.expect_symbol(')')?;
        Ok(Statement::CreateIndex { table, column })
    }

    /// `INSERT INTO t VALUES (…), (…)` — already past `INSERT INTO`.
    fn insert(&mut self) -> Result<Statement> {
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal_value()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            rows.push(row);
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    /// A literal for a VALUES row: numbers (with optional sign),
    /// strings, DATE '…', booleans, NULL.
    fn literal_value(&mut self) -> Result<Value> {
        let negative = self.eat_symbol('-');
        let v = match self.bump()? {
            Token::Int(n) => Value::Int(if negative { -n } else { n }),
            Token::Float(f) => Value::Float(if negative { -f } else { f }),
            t if negative => {
                return Err(MqError::Parse(format!(
                    "expected number after '-', got {t:?}"
                )))
            }
            Token::Str(s) => Value::str(s),
            Token::Word(w) if w == "true" => Value::Bool(true),
            Token::Word(w) if w == "false" => Value::Bool(false),
            Token::Word(w) if w == "null" => Value::Null,
            Token::Word(w) if w == "date" => match self.bump()? {
                Token::Str(s) => match parse_date(&s)? {
                    Expr::Literal(v) => v,
                    _ => unreachable!("parse_date returns a literal"),
                },
                other => {
                    return Err(MqError::Parse(format!(
                        "expected date string, got {other:?}"
                    )))
                }
            },
            other => {
                return Err(MqError::Parse(format!(
                    "expected literal in VALUES, got {other:?}"
                )))
            }
        };
        Ok(v)
    }

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let mut select = vec![self.select_item()?];
        while self.eat_symbol(',') {
            select.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.ident()?];
        while self.eat_symbol(',') {
            from.push(self.ident()?);
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.ident()?);
            while self.eat_symbol(',') {
                group_by.push(self.ident()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.ident()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((col, asc));
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.bump()? {
                Token::Int(n) if n >= 0 => Some(n as u64),
                other => return Err(MqError::Parse(format!("bad LIMIT {other:?}"))),
            }
        } else {
            None
        };
        Ok(Query {
            select,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_symbol('*') {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate call?
        if let Some(Token::Word(w)) = self.peek() {
            if let Some(func) = agg_func(w) {
                if self.tokens.get(self.pos + 1) == Some(&Token::Symbol('(')) {
                    self.pos += 2;
                    let arg = if self.eat_symbol('*') {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect_symbol(')')?;
                    let alias = self.alias()?;
                    return Ok(SelectItem::Agg { func, arg, alias });
                }
            }
        }
        let expr = self.expr()?;
        let alias = self.alias()?;
        Ok(SelectItem::Expr { expr, alias })
    }

    fn alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("as") {
            Ok(Some(self.ident()?))
        } else {
            Ok(None)
        }
    }

    /// expr := and_expr (OR and_expr)*
    fn expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.and_expr()?];
        while self.eat_kw("or") {
            terms.push(self.and_expr()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Expr::Or(terms)
        })
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut terms = vec![self.not_expr()?];
        while self.eat_kw("and") {
            terms.push(self.not_expr()?);
        }
        Ok(mq_expr::and(terms))
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    /// comparison := additive [(op additive) | BETWEEN additive AND
    /// additive | \[NOT\] IN (literal, …)]
    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        if self.eat_kw("between") {
            let lo = self.additive()?;
            self.expect_kw("and")?;
            let hi = self.additive()?;
            return Ok(mq_expr::and(vec![
                mq_expr::cmp(CmpOp::Ge, left.clone(), lo),
                mq_expr::cmp(CmpOp::Le, left, hi),
            ]));
        }
        // [NOT] IN (v1, v2, …) desugars to a disjunction of equalities
        // (negated for NOT IN) — the optimizer's OR handling, including
        // implied-predicate derivation, applies unchanged.
        let (is_in, negated) = if self.eat_kw("not") {
            self.expect_kw("in")?;
            (true, true)
        } else {
            (self.eat_kw("in"), false)
        };
        if is_in {
            self.expect_symbol('(')?;
            let mut arms = Vec::new();
            loop {
                let v = self.literal_value()?;
                arms.push(mq_expr::cmp(CmpOp::Eq, left.clone(), Expr::Literal(v)));
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            let disj = if arms.len() == 1 {
                arms.pop().unwrap()
            } else {
                Expr::Or(arms)
            };
            return Ok(if negated {
                Expr::Not(Box::new(disj))
            } else {
                disj
            });
        }
        if let Some(Token::Op(op)) = self.peek() {
            let op = match op.as_str() {
                "=" => CmpOp::Eq,
                "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => return Err(MqError::Parse(format!("unknown operator '{other}'"))),
            };
            self.pos += 1;
            let right = self.additive()?;
            return Ok(mq_expr::cmp(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = if self.eat_symbol('+') {
                ArithOp::Add
            } else if self.eat_symbol('-') {
                ArithOp::Sub
            } else {
                return Ok(left);
            };
            let right = self.multiplicative()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.primary()?;
        loop {
            let op = if self.eat_symbol('*') {
                ArithOp::Mul
            } else if self.eat_symbol('/') {
                ArithOp::Div
            } else {
                return Ok(left);
            };
            let right = self.primary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        if self.eat_symbol('(') {
            let e = self.expr()?;
            self.expect_symbol(')')?;
            return Ok(e);
        }
        match self.bump()? {
            Token::Int(n) => Ok(mq_expr::lit(n)),
            Token::Float(f) => Ok(mq_expr::lit(f)),
            Token::Str(s) => Ok(mq_expr::lit(s)),
            Token::Word(w) if w == "date" => {
                // DATE 'yyyy-mm-dd'
                match self.bump()? {
                    Token::Str(s) => parse_date(&s),
                    other => Err(MqError::Parse(format!(
                        "expected date string, got {other:?}"
                    ))),
                }
            }
            Token::Word(w) if w == "true" => Ok(mq_expr::lit(true)),
            Token::Word(w) if w == "false" => Ok(mq_expr::lit(false)),
            Token::Word(w) if w == "null" => Ok(Expr::Literal(Value::Null)),
            Token::Word(w) | Token::QualifiedWord(w) => Ok(mq_expr::col(&w)),
            other => Err(MqError::Parse(format!("unexpected token {other:?}"))),
        }
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        _ => return None,
    })
}

fn parse_date(s: &str) -> Result<Expr> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return Err(MqError::Parse(format!("bad date literal '{s}'")));
    }
    let y: i64 = parts[0]
        .parse()
        .map_err(|_| MqError::Parse(format!("bad date year in '{s}'")))?;
    let m: u32 = parts[1]
        .parse()
        .map_err(|_| MqError::Parse(format!("bad date month in '{s}'")))?;
    let d: u32 = parts[2]
        .parse()
        .map_err(|_| MqError::Parse(format!("bad date day in '{s}'")))?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return Err(MqError::Parse(format!("date '{s}' out of range")));
    }
    Ok(Expr::Literal(mq_common::value::date(y, m, d)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_query_shape() {
        let q = parse_query(
            "SELECT l_returnflag, sum(l_quantity) AS total \
             FROM lineitem, orders \
             WHERE l_orderkey = o_orderkey AND l_shipdate <= DATE '1998-09-02' \
             GROUP BY l_returnflag ORDER BY total DESC LIMIT 3",
        )
        .unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from, vec!["lineitem", "orders"]);
        assert!(q.where_clause.is_some());
        assert_eq!(q.group_by, vec!["l_returnflag"]);
        assert_eq!(q.order_by, vec![("total".to_string(), false)]);
        assert_eq!(q.limit, Some(3));
    }

    #[test]
    fn between_desugars() {
        let q = parse_query("SELECT a FROM t WHERE a BETWEEN 1 AND 5").unwrap();
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse_query("SELECT a + b * 2 FROM t").unwrap();
        match &q.select[0] {
            crate::ast::SelectItem::Expr { expr, .. } => {
                assert_eq!(expr.to_string(), "(a + (b * 2))");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn count_star() {
        let q = parse_query("SELECT count(*) FROM t").unwrap();
        assert!(matches!(
            q.select[0],
            crate::ast::SelectItem::Agg {
                func: AggFunc::Count,
                arg: None,
                ..
            }
        ));
    }

    #[test]
    fn date_literal() {
        let q = parse_query("SELECT a FROM t WHERE d < DATE '1995-03-15'").unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert!(w.contains("1995-03-15"), "{w}");
    }

    #[test]
    fn or_and_not() {
        let q = parse_query("SELECT a FROM t WHERE NOT a = 1 OR b = 2 AND c = 3").unwrap();
        let w = q.where_clause.unwrap();
        assert!(matches!(w, Expr::Or(_)));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT a").is_err()); // no FROM
        assert!(parse_query("SELECT a FROM t WHERE").is_err());
        assert!(parse_query("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_query("SELECT a FROM t extra").is_err());
        assert!(parse_query("SELECT a FROM t WHERE d < DATE '95x'").is_err());
    }

    #[test]
    fn create_table_statement() {
        let s = parse_statement(
            "CREATE TABLE emp (id INT, salary FLOAT, name VARCHAR, hired DATE, active BOOL)",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "emp");
                assert_eq!(
                    columns,
                    vec![
                        ("id".to_string(), DataType::Int),
                        ("salary".to_string(), DataType::Float),
                        ("name".to_string(), DataType::Str),
                        ("hired".to_string(), DataType::Date),
                        ("active".to_string(), DataType::Bool),
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
        // Type synonyms.
        assert!(parse_statement("CREATE TABLE t (a INTEGER, b DOUBLE, c TEXT)").is_ok());
        assert!(parse_statement("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statement("CREATE TABLE t ()").is_err());
    }

    #[test]
    fn insert_statement() {
        let s = parse_statement(
            "INSERT INTO emp VALUES (1, -2.5, 'bob', DATE '2001-09-09', true), (2, 0.0, 'eve', NULL, false)",
        )
        .unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "emp");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[0][0], Value::Int(1));
                assert_eq!(rows[0][1], Value::Float(-2.5));
                assert_eq!(rows[0][2], Value::str("bob"));
                assert_eq!(rows[1][3], Value::Null);
                assert_eq!(rows[1][4], Value::Bool(false));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Expressions are not literals.
        assert!(parse_statement("INSERT INTO t VALUES (1 + 2)").is_err());
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (-'x')").is_err());
    }

    #[test]
    fn create_index_and_analyze_statements() {
        assert_eq!(
            parse_statement("CREATE INDEX ON emp (id)").unwrap(),
            Statement::CreateIndex {
                table: "emp".into(),
                column: "id".into()
            }
        );
        assert_eq!(
            parse_statement("ANALYZE emp").unwrap(),
            Statement::Analyze {
                table: "emp".into()
            }
        );
        assert!(parse_statement("CREATE VIEW v").is_err());
        assert!(parse_statement("CREATE INDEX emp (id)").is_err());
    }

    #[test]
    fn in_list_desugars_to_disjunction() {
        let q = parse_query("SELECT a FROM t WHERE a IN (1, 2, 3)").unwrap();
        match q.where_clause.unwrap() {
            Expr::Or(arms) => assert_eq!(arms.len(), 3),
            other => panic!("expected OR, got {other}"),
        }
        // Single-element IN collapses to a bare equality.
        let q = parse_query("SELECT a FROM t WHERE a IN (7)").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Cmp { .. }));
        // NOT IN wraps the disjunction.
        let q = parse_query("SELECT a FROM t WHERE tag NOT IN ('x', 'y')").unwrap();
        assert!(matches!(q.where_clause.unwrap(), Expr::Not(_)));
        // Strings and dates are fine; expressions are not.
        assert!(parse_query("SELECT a FROM t WHERE d IN (DATE '1994-01-01')").is_ok());
        assert!(parse_query("SELECT a FROM t WHERE a IN (b)").is_err());
        assert!(parse_query("SELECT a FROM t WHERE a IN ()").is_err());
    }

    #[test]
    fn select_statement_roundtrip() {
        match parse_statement("SELECT a FROM t WHERE a < 3").unwrap() {
            Statement::Select(q) => {
                assert_eq!(q.from, vec!["t"]);
                assert!(q.where_clause.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
