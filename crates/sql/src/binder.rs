//! Binder: AST → logical plan, resolved against the catalog.

use mq_catalog::Catalog;
use mq_common::{MqError, Result, Schema};
use mq_expr::Expr;
use mq_plan::{AggExpr, LogicalPlan};

use crate::ast::{Query, SelectItem};

/// Bind a parsed query into a [`LogicalPlan`].
pub fn bind(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    if query.from.is_empty() {
        return Err(MqError::Parse("FROM list is empty".into()));
    }
    // Combined schema for name resolution.
    let mut combined = Schema::empty();
    for t in &query.from {
        let entry = catalog.table(t)?;
        combined = combined.join(&entry.schema);
    }

    // FROM: fold into a join chain; the optimizer re-derives the join
    // graph from the WHERE predicates, so the `on` lists stay empty.
    let mut plan = LogicalPlan::scan(&query.from[0]);
    for t in &query.from[1..] {
        plan = LogicalPlan::Join {
            left: Box::new(plan),
            right: Box::new(LogicalPlan::scan(t)),
            on: Vec::new(),
        };
    }

    if let Some(w) = &query.where_clause {
        check_columns(w, &combined)?;
        plan = plan.filter(w.clone());
    }

    // Split the select list into plain expressions and aggregates.
    let mut aggs: Vec<AggExpr> = Vec::new();
    let mut plain: Vec<(Expr, String)> = Vec::new();
    let mut has_wildcard = false;
    let mut agg_counter = 0usize;
    for item in &query.select {
        match item {
            SelectItem::Wildcard => has_wildcard = true,
            SelectItem::Expr { expr, alias } => {
                check_columns(expr, &combined)?;
                let name = alias.clone().unwrap_or_else(|| display_name(expr));
                plain.push((expr.clone(), name));
            }
            SelectItem::Agg { func, arg, alias } => {
                if let Some(a) = arg {
                    check_columns(a, &combined)?;
                }
                agg_counter += 1;
                let name = alias
                    .clone()
                    .unwrap_or_else(|| format!("{func}_{agg_counter}"));
                aggs.push(AggExpr {
                    func: *func,
                    arg: arg.clone(),
                    name,
                });
            }
        }
    }

    if !aggs.is_empty() || !query.group_by.is_empty() {
        if has_wildcard {
            return Err(MqError::Parse(
                "SELECT * cannot be combined with aggregates".into(),
            ));
        }
        // Grouped query: plain select items must be grouping columns.
        for (e, _) in &plain {
            let name = match e {
                Expr::Column(n) => n.to_string(),
                other => {
                    return Err(MqError::Parse(format!(
                        "non-aggregate select item '{other}' requires GROUP BY column"
                    )))
                }
            };
            let in_group = query
                .group_by
                .iter()
                .any(|g| g == &name || g.rsplit('.').next() == name.rsplit('.').next());
            if !in_group {
                return Err(MqError::Parse(format!(
                    "column '{name}' must appear in GROUP BY"
                )));
            }
        }
        for g in &query.group_by {
            combined.index_of(g)?;
        }
        plan = LogicalPlan::Aggregate {
            input: Box::new(plan),
            group_by: query.group_by.clone(),
            aggs,
        };
    } else if !has_wildcard && !plain.is_empty() {
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: plain,
        };
    }

    if !query.order_by.is_empty() {
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys: query.order_by.clone(),
        };
    }
    if let Some(n) = query.limit {
        plan = plan.limit(n);
    }
    Ok(plan)
}

fn display_name(e: &Expr) -> String {
    match e {
        Expr::Column(n) => n.rsplit('.').next().unwrap_or(n).to_string(),
        other => other.to_string(),
    }
}

fn check_columns(e: &Expr, schema: &Schema) -> Result<()> {
    for c in e.referenced_columns() {
        schema.index_of(&c)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use mq_common::{DataType, EngineConfig, SimClock};
    use mq_storage::Storage;

    fn catalog() -> Catalog {
        let cfg = EngineConfig::default();
        let st = Storage::new(&cfg, SimClock::new());
        let cat = Catalog::new();
        cat.create_table(&st, "t", vec![("a", DataType::Int), ("b", DataType::Int)])
            .unwrap();
        cat.create_table(&st, "u", vec![("a2", DataType::Int), ("c", DataType::Str)])
            .unwrap();
        cat
    }

    #[test]
    fn grouped_plain_column_must_be_grouped() {
        let cat = catalog();
        let q = parse_query("SELECT b, count(*) FROM t GROUP BY a").unwrap();
        assert!(bind(&q, &cat).is_err());
        let q = parse_query("SELECT a, count(*) FROM t GROUP BY a").unwrap();
        assert!(bind(&q, &cat).is_ok());
    }

    #[test]
    fn cross_table_names_resolve() {
        let cat = catalog();
        let q = parse_query("SELECT a, c FROM t, u WHERE a = a2").unwrap();
        let plan = bind(&q, &cat).unwrap();
        assert_eq!(plan.join_count(), 1);
    }

    #[test]
    fn wildcard_with_aggregate_rejected() {
        let cat = catalog();
        let q = parse_query("SELECT *, count(*) FROM t").unwrap();
        assert!(bind(&q, &cat).is_err());
    }

    #[test]
    fn synthesized_agg_names() {
        let cat = catalog();
        let q = parse_query("SELECT count(*), sum(a) FROM t").unwrap();
        let plan = bind(&q, &cat).unwrap();
        let schema = plan.schema(&cat).unwrap();
        assert_eq!(schema.field(0).name.as_ref(), "count_1");
        assert_eq!(schema.field(1).name.as_ref(), "sum_2");
    }
}
