//! mq-obs: the observability spine of the engine.
//!
//! The paper's re-optimization machinery is driven entirely by runtime
//! evidence — collector operators observing statistics that contradict
//! the optimizer's estimates. This crate makes that evidence (and the
//! decisions taken on it) visible without perturbing execution:
//!
//! * a typed **event bus** ([`ObsEvent`], [`ObsSink`]) with ring-buffer
//!   and JSONL sinks and thread-local span scoping in the style of
//!   `mq_common::fault`;
//! * a **metrics registry** ([`MetricsRegistry`]) with a deterministic
//!   snapshot, stable/volatile metric classes and Prometheus-text
//!   exposition;
//! * the JSON helpers trace consumers (bench figures, tests, EXPLAIN
//!   ANALYZE tooling) parse the JSONL trace with.
//!
//! # Scoping
//!
//! Instrumented code never holds a handle to a sink: it calls the free
//! functions ([`emit`], [`active`], [`sink_active`], [`with_metrics`])
//! which consult the innermost thread-local [`Obs`] scope — or no-op
//! when no scope is active, so an untraced query pays one thread-local
//! read per emission site. Crucially, nothing in this crate charges
//! the simulated clock: tracing cannot change a query's simulated
//! cost, which the overhead test asserts exactly (0% < the 2% budget).

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;

pub use event::{ObsEvent, ReoptVerdict, SegmentOutcome};
pub use json::{json_f64, json_raw, json_str, json_u64};
pub use metrics::{MetricsRegistry, MetricsSnapshot, Stability, INACCURACY_BUCKETS};
pub use sink::{JsonlSink, ObsSink, RingSink, SpanInfo, TeeSink, TraceRecord};

/// One observability context: an optional sink, an optional metrics
/// registry, and the span identity (job id + label) stamped on every
/// record. Cheap to clone; clones share the sink, registry and
/// sequence counter.
#[derive(Clone, Default)]
pub struct Obs {
    sink: Option<Arc<dyn ObsSink>>,
    metrics: Option<MetricsRegistry>,
    job: u64,
    label: Arc<str>,
    seq: Arc<AtomicU64>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("sink", &self.sink.is_some())
            .field("metrics", &self.metrics.is_some())
            .field("job", &self.job)
            .field("label", &self.label)
            .finish()
    }
}

impl Obs {
    /// An inactive context: emissions under its scope are dropped.
    pub fn none() -> Obs {
        Obs::default()
    }

    /// Attach an event sink.
    pub fn with_sink(mut self, sink: Arc<dyn ObsSink>) -> Obs {
        self.sink = Some(sink);
        self
    }

    /// Attach a metrics registry (events fold into it as they are
    /// emitted; see [`fold_event`]).
    pub fn with_metrics(mut self, metrics: MetricsRegistry) -> Obs {
        self.metrics = Some(metrics);
        self
    }

    /// Re-stamp the span identity for one workload job. Resets the
    /// sequence counter: per-job sequences order records within a job.
    pub fn for_job(&self, job: u64, label: &str) -> Obs {
        Obs {
            sink: self.sink.clone(),
            metrics: self.metrics.clone(),
            job,
            label: Arc::from(label),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Does emitting under this context do anything at all?
    pub fn is_active(&self) -> bool {
        self.sink.is_some() || self.metrics.is_some()
    }

    /// The attached metrics registry, if any.
    pub fn metrics_registry(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_ref()
    }

    /// Emit one event through this context (regardless of scoping).
    pub fn emit(&self, ev: &ObsEvent) {
        if let Some(m) = &self.metrics {
            fold_event(m, ev);
        }
        if let Some(s) = &self.sink {
            let span = SpanInfo {
                job: self.job,
                label: self.label.clone(),
                seq: self.seq.fetch_add(1, Ordering::Relaxed),
            };
            s.emit(&span, ev);
        }
    }

    /// Enter a scope: until the returned guard drops, the free
    /// functions on this thread route to this context.
    pub fn enter_scope(&self) -> ObsScope {
        OBS_SCOPE.with(|stack| stack.borrow_mut().push(self.clone()));
        ObsScope {
            _not_send: PhantomData,
        }
    }
}

thread_local! {
    static OBS_SCOPE: RefCell<Vec<Obs>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an observability scope (see [`Obs::enter_scope`]).
/// Deliberately `!Send`: a scope must pop on the thread it was pushed.
#[must_use = "the observability scope ends when this guard is dropped"]
pub struct ObsScope {
    _not_send: PhantomData<*const ()>,
}

impl Drop for ObsScope {
    fn drop(&mut self) {
        OBS_SCOPE.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

fn with_scoped<T>(default: T, f: impl FnOnce(&Obs) -> T) -> T {
    OBS_SCOPE.with(|stack| match stack.borrow().last() {
        Some(obs) => f(obs),
        None => default,
    })
}

/// Emit an event through the innermost scope. No-op without a scope.
/// Takes a closure so callers do not even build the event (or format
/// its strings) when nothing is listening.
pub fn emit(ev: impl FnOnce() -> ObsEvent) {
    with_scoped((), |obs| {
        if obs.is_active() {
            obs.emit(&ev());
        }
    });
}

/// Is an active (sink or metrics) scope installed on this thread?
pub fn active() -> bool {
    with_scoped(false, Obs::is_active)
}

/// Is a scope with an event *sink* installed? Used to gate detailed
/// per-operator profiling that is pointless without a trace consumer.
pub fn sink_active() -> bool {
    with_scoped(false, |obs| obs.sink.is_some())
}

/// Run `f` against the scoped metrics registry, if one is installed.
pub fn with_metrics(f: impl FnOnce(&MetricsRegistry)) {
    with_scoped((), |obs| {
        if let Some(m) = &obs.metrics {
            f(m);
        }
    });
}

/// Fold one event into the registry. Stability classes follow the
/// module docs of [`metrics`]: anything derived from logical execution
/// (rows, checkpoints, verdicts, retries, spills) is `Stable`;
/// anything touching shared physical state (page I/O, pool occupancy,
/// simulated timings) is `Volatile`.
pub fn fold_event(m: &MetricsRegistry, ev: &ObsEvent) {
    use Stability::{Stable, Volatile};
    match ev {
        ObsEvent::QueryStart { .. } => {}
        ObsEvent::SegmentStart { .. } => {
            m.inc("midq_segments_total", &[], Stable, 1);
        }
        ObsEvent::SegmentEnd { .. } => {}
        ObsEvent::Collector {
            inaccuracy,
            complete,
            ..
        } => {
            let c = if *complete { "true" } else { "false" };
            m.inc(
                "midq_collector_reports_total",
                &[("complete", c)],
                Stable,
                1,
            );
            if *complete {
                m.observe(
                    "midq_estimation_inaccuracy",
                    &[],
                    Stable,
                    &INACCURACY_BUCKETS,
                    *inaccuracy,
                );
            }
        }
        ObsEvent::Reopt { verdict, .. } => {
            m.inc(
                "midq_reopt_decisions_total",
                &[("verdict", verdict.as_str())],
                Stable,
                1,
            );
        }
        ObsEvent::GrantChange { .. } => {
            m.inc("midq_grant_changes_total", &[], Stable, 1);
        }
        ObsEvent::LeaseAcquire { granted_bytes, .. } => {
            m.inc("midq_lease_acquires_total", &[], Volatile, 1);
            m.gauge_max(
                "midq_lease_granted_bytes",
                &[],
                Volatile,
                *granted_bytes as f64,
            );
        }
        ObsEvent::LeaseGrow { granted_bytes, .. } => {
            m.inc("midq_lease_grows_total", &[], Volatile, 1);
            m.inc(
                "midq_lease_grow_granted_bytes_total",
                &[],
                Volatile,
                *granted_bytes,
            );
        }
        ObsEvent::LeaseDeny { site } => {
            m.inc("midq_lease_denials_total", &[("site", site)], Stable, 1);
        }
        ObsEvent::Spill {
            operator, bytes, ..
        } => {
            m.inc(
                "midq_spill_events_total",
                &[("operator", operator)],
                Stable,
                1,
            );
            m.inc("midq_spill_bytes_total", &[], Stable, *bytes);
        }
        ObsEvent::SegmentRetry { .. } => {
            m.inc("midq_segment_retries_total", &[], Stable, 1);
        }
        ObsEvent::Cleanup {
            temp_tables,
            temp_files,
            failures,
        } => {
            m.inc("midq_cleanup_temp_tables_total", &[], Stable, *temp_tables);
            m.inc("midq_cleanup_temp_files_total", &[], Stable, *temp_files);
            m.inc("midq_cleanup_failures_total", &[], Stable, *failures);
        }
        ObsEvent::Exchange { mode, rows, .. } => {
            // Rows through an exchange are a logical property of the
            // plan (the child's output), identical for any partition
            // count — stable. The stage count per mode is too, because
            // exchanges are inserted even at partitions=1.
            m.inc("midq_exchange_stages_total", &[("mode", mode)], Stable, 1);
            m.inc("midq_exchange_rows_total", &[("mode", mode)], Stable, *rows);
        }
        ObsEvent::SkewVerdict { action, .. } => {
            // Whether skew trips depends on the partition count, so
            // this cannot be part of the partition-invariant surface.
            m.inc(
                "midq_skew_verdicts_total",
                &[("action", action)],
                Volatile,
                1,
            );
        }
        ObsEvent::CrashInjected { .. } => {
            m.inc("midq_crashes_injected_total", &[], Stable, 1);
        }
        ObsEvent::RecoveryStarted { .. } => {
            m.inc("midq_recoveries_total", &[], Stable, 1);
        }
        ObsEvent::SegmentsSalvaged { salvaged, .. } => {
            m.inc("midq_segments_salvaged_total", &[], Stable, *salvaged);
        }
        ObsEvent::OrphansSwept { tables, files, .. } => {
            m.inc("midq_orphans_swept_tables_total", &[], Stable, *tables);
            m.inc("midq_orphans_swept_files_total", &[], Stable, *files);
        }
        // Cache traffic is a function of the workload's logical query
        // sequence (the cache is probed/promoted per query, not per
        // worker), so hits/misses/promotions and the bytes they save
        // are stable. Evictions depend on the byte budget the runtime
        // happened to lease — volatile.
        ObsEvent::CacheHit {
            saved_bytes, rows, ..
        } => {
            m.inc("midq_cache_hits_total", &[], Stable, 1);
            m.inc("midq_cache_rows_reused_total", &[], Stable, *rows);
            m.inc("midq_cache_bytes_saved_total", &[], Stable, *saved_bytes);
        }
        ObsEvent::CacheMiss { .. } => {
            m.inc("midq_cache_misses_total", &[], Stable, 1);
        }
        ObsEvent::CachePromote { bytes, .. } => {
            m.inc("midq_cache_promotions_total", &[], Stable, 1);
            m.inc("midq_cache_promoted_bytes_total", &[], Stable, *bytes);
        }
        ObsEvent::CacheEvict { bytes, .. } => {
            m.inc("midq_cache_evictions_total", &[], Volatile, 1);
            m.inc("midq_cache_evicted_bytes_total", &[], Volatile, *bytes);
        }
        ObsEvent::FeedbackApplied { .. } => {
            m.inc("midq_feedback_applied_total", &[], Stable, 1);
        }
        // Plan-cache traffic follows the logical query sequence (one
        // probe per SQL text, before any worker-dependent machinery),
        // so hits/misses/stale re-optimizations are stable. Evictions
        // depend on interleaving under capacity pressure, and the
        // histogram-refresh trigger counts feedback hits whose arrival
        // order is timing-dependent under concurrency — volatile.
        ObsEvent::PlanCacheHit { saved_work } => {
            m.inc("midq_plancache_hits_total", &[], Stable, 1);
            m.inc("midq_plancache_saved_work_total", &[], Stable, *saved_work);
        }
        ObsEvent::PlanCacheMiss => {
            m.inc("midq_plancache_misses_total", &[], Stable, 1);
        }
        ObsEvent::PlanCacheStale { reason } => {
            m.inc(
                "midq_plancache_reopts_total",
                &[("reason", reason)],
                Stable,
                1,
            );
        }
        ObsEvent::PlanCacheEvict { .. } => {
            m.inc("midq_plancache_evictions_total", &[], Volatile, 1);
        }
        ObsEvent::HistogramRefresh { .. } => {
            m.inc("midq_histogram_refresh_total", &[], Volatile, 1);
        }
        ObsEvent::QueryEnd {
            outcome,
            rows,
            sim_ms,
            pages_read,
            pages_written,
            cpu_ops,
            opt_work,
            plan_switches,
            memory_reallocs,
            ..
        } => {
            m.inc("midq_queries_total", &[("outcome", outcome)], Stable, 1);
            m.inc("midq_rows_out_total", &[], Stable, *rows);
            m.inc("midq_plan_switches_total", &[], Stable, *plan_switches);
            m.inc("midq_memory_reallocs_total", &[], Stable, *memory_reallocs);
            m.inc("midq_pages_read_total", &[], Volatile, *pages_read);
            m.inc("midq_pages_written_total", &[], Volatile, *pages_written);
            m.inc("midq_cpu_ops_total", &[], Volatile, *cpu_ops);
            m.inc("midq_opt_work_total", &[], Volatile, *opt_work);
            m.gauge_max("midq_query_sim_ms_max", &[], Volatile, *sim_ms);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_scope_is_a_noop() {
        assert!(!active());
        assert!(!sink_active());
        emit(|| unreachable!("closure must not run without a scope"));
        let mut ran = false;
        with_metrics(|_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn inactive_scope_never_builds_the_event() {
        let obs = Obs::none();
        let _scope = obs.enter_scope();
        assert!(!active());
        emit(|| unreachable!("closure must not run under an inactive scope"));
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let ring = Arc::new(RingSink::new(16));
        let outer = Obs::none().with_sink(ring.clone());
        let _a = outer.enter_scope();
        assert!(sink_active());
        {
            let _b = Obs::none().enter_scope();
            assert!(!sink_active(), "inner scope wins");
            emit(|| ObsEvent::QueryStart { mode: "full" });
        }
        assert!(sink_active(), "outer scope restored");
        emit(|| ObsEvent::QueryStart { mode: "full" });
        assert_eq!(ring.total_emitted(), 1, "only the outer-scope emission");
    }

    #[test]
    fn events_fold_into_scoped_metrics() {
        let reg = MetricsRegistry::new();
        let obs = Obs::none().with_metrics(reg.clone());
        let _scope = obs.enter_scope();
        assert!(active());
        emit(|| ObsEvent::Collector {
            node: 3,
            observed_rows: 500,
            estimated_rows: 50.0,
            inaccuracy: 10.0,
            complete: true,
        });
        emit(|| ObsEvent::Reopt {
            node: 3,
            verdict: ReoptVerdict::Accept,
            t_new_ms: 10.0,
            t_cur_ms: 30.0,
            degradation: 3.0,
            divergence: 9.0,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("midq_collector_reports_total"), 1);
        assert_eq!(
            snap.counter_with("midq_reopt_decisions_total", ("verdict", "accept")),
            1
        );
        assert!(snap.stable_text().contains("midq_estimation_inaccuracy"));
    }

    #[test]
    fn for_job_stamps_span_identity() {
        let ring = Arc::new(RingSink::new(16));
        let obs = Obs::none().with_sink(ring.clone()).for_job(7, "Q3");
        obs.emit(&ObsEvent::QueryStart { mode: "off" });
        obs.emit(&ObsEvent::QueryEnd {
            outcome: "ok".into(),
            rows: 1,
            sim_ms: 0.5,
            pages_read: 0,
            pages_written: 0,
            cpu_ops: 10,
            opt_work: 0,
            plan_switches: 0,
            segment_retries: 0,
            memory_reallocs: 0,
            collector_reports: 0,
        });
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].job, 7);
        assert_eq!(&*records[0].label, "Q3");
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
    }
}
