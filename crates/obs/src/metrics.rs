//! The metrics registry: counters, gauges and histograms with a
//! deterministic snapshot and Prometheus-text exposition.
//!
//! Every metric carries a [`Stability`] class. `Stable` metrics are
//! functions of a query's *logical* execution only (rows, collector
//! checkpoints, SCIA verdicts, segment retries) and must be
//! byte-identical across worker counts and reruns — the chaos harness
//! asserts exactly that over [`MetricsSnapshot::stable_text`].
//! `Volatile` metrics depend on shared physical state (buffer-pool
//! warmth, broker pool occupancy, simulated timings) and are excluded
//! from determinism checks while still appearing in the full
//! exposition.
//!
//! Snapshots are deterministic by construction: metrics live in a
//! `BTreeMap` keyed by `(name, labels)`, floats render through Rust's
//! shortest-roundtrip `Display`, and histogram buckets are fixed at
//! registration.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

/// Determinism class of a metric (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// A function of logical execution only: byte-identical across
    /// worker counts for a deterministic workload.
    Stable,
    /// Depends on physical shared state; excluded from determinism
    /// comparisons.
    Volatile,
}

/// Histogram buckets for the estimation-inaccuracy distribution:
/// powers of two over the inaccuracy factor (which is ≥ 1).
pub const INACCURACY_BUCKETS: [f64; 8] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0];

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Upper bounds, parallel to `counts`; an implicit `+Inf`
        /// bucket is `count - counts.sum()`.
        bounds: Vec<f64>,
        counts: Vec<u64>,
        sum: f64,
        count: u64,
    },
}

impl Value {
    fn type_str(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram { .. } => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    name: String,
    /// Pre-rendered `{k="v",…}` label suffix (empty for no labels).
    labels: String,
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

/// A shared metrics registry. Cloning shares the underlying map; the
/// runtime gives each job its own registry and merges snapshots into
/// the workload-level view.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<BTreeMap<Key, (Stability, Value)>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn with_entry(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        stability: Stability,
        default: Value,
        f: impl FnOnce(&mut Value),
    ) {
        let key = Key {
            name: name.to_string(),
            labels: render_labels(labels),
        };
        let mut map = self.inner.lock();
        let entry = map.entry(key).or_insert((stability, default));
        f(&mut entry.1);
    }

    /// Add `delta` to a counter (creating it at zero).
    pub fn inc(&self, name: &str, labels: &[(&str, &str)], stability: Stability, delta: u64) {
        self.with_entry(name, labels, stability, Value::Counter(0), |v| {
            if let Value::Counter(c) = v {
                *c += delta;
            }
        });
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, name: &str, labels: &[(&str, &str)], stability: Stability, value: f64) {
        self.with_entry(name, labels, stability, Value::Gauge(value), |v| {
            if let Value::Gauge(g) = v {
                *g = value;
            }
        });
    }

    /// Raise a gauge to `value` if it is higher (high-water marks).
    pub fn gauge_max(&self, name: &str, labels: &[(&str, &str)], stability: Stability, value: f64) {
        self.with_entry(name, labels, stability, Value::Gauge(value), |v| {
            if let Value::Gauge(g) = v {
                *g = g.max(value);
            }
        });
    }

    /// Record an observation into a histogram with the given bucket
    /// upper bounds (fixed on first observation).
    pub fn observe(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        stability: Stability,
        bounds: &[f64],
        value: f64,
    ) {
        let fresh = Value::Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len()],
            sum: 0.0,
            count: 0,
        };
        self.with_entry(name, labels, stability, fresh, |v| {
            if let Value::Histogram {
                bounds,
                counts,
                sum,
                count,
            } = v
            {
                for (b, c) in bounds.iter().zip(counts.iter_mut()) {
                    if value <= *b {
                        *c += 1;
                    }
                }
                *sum += value;
                *count += 1;
            }
        });
    }

    /// Merge a snapshot into this registry: counters and histograms
    /// add, gauges take the maximum (gauges here are high-water style).
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        let mut map = self.inner.lock();
        for e in &snap.entries {
            let key = Key {
                name: e.name.clone(),
                labels: e.labels.clone(),
            };
            match map.entry(key) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert((e.stability, e.value.clone()));
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    match (&mut o.get_mut().1, &e.value) {
                        (Value::Counter(a), Value::Counter(b)) => *a += b,
                        (Value::Gauge(a), Value::Gauge(b)) => *a = a.max(*b),
                        (
                            Value::Histogram {
                                counts: ac,
                                sum: asum,
                                count: an,
                                ..
                            },
                            Value::Histogram {
                                counts: bc,
                                sum: bsum,
                                count: bn,
                                ..
                            },
                        ) => {
                            for (a, b) in ac.iter_mut().zip(bc) {
                                *a += b;
                            }
                            *asum += bsum;
                            *an += bn;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// A deterministic point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock();
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|(k, (stability, value))| MetricEntry {
                    name: k.name.clone(),
                    labels: k.labels.clone(),
                    stability: *stability,
                    value: value.clone(),
                })
                .collect(),
        }
    }
}

/// One metric in a snapshot.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    name: String,
    labels: String,
    stability: Stability,
    value: Value,
}

/// An immutable, deterministically ordered copy of a registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    entries: Vec<MetricEntry>,
}

impl MetricsSnapshot {
    /// True if no metric was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of a counter across all label sets (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match e.value {
                Value::Counter(c) => c,
                _ => 0,
            })
            .sum()
    }

    /// A counter narrowed to one label pair (0 if absent).
    pub fn counter_with(&self, name: &str, label: (&str, &str)) -> u64 {
        let needle = format!("{}=\"{}\"", label.0, label.1);
        self.entries
            .iter()
            .filter(|e| e.name == name && e.labels.contains(&needle))
            .map(|e| match e.value {
                Value::Counter(c) => c,
                _ => 0,
            })
            .sum()
    }

    /// A gauge's value (None if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|e| match e.value {
            Value::Gauge(g) if e.name == name => Some(g),
            _ => None,
        })
    }

    /// Full Prometheus-text exposition.
    pub fn prometheus_text(&self) -> String {
        self.render(|_| true)
    }

    /// Exposition restricted to [`Stability::Stable`] metrics — the
    /// byte-identical-across-worker-counts subset.
    pub fn stable_text(&self) -> String {
        self.render(|e| e.stability == Stability::Stable)
    }

    fn render(&self, keep: impl Fn(&MetricEntry) -> bool) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for e in self.entries.iter().filter(|e| keep(e)) {
            if last_name != Some(e.name.as_str()) {
                let _ = writeln!(out, "# TYPE {} {}", e.name, e.value.type_str());
                last_name = Some(e.name.as_str());
            }
            match &e.value {
                Value::Counter(c) => {
                    let _ = writeln!(out, "{}{} {c}", e.name, e.labels);
                }
                Value::Gauge(g) => {
                    let _ = writeln!(out, "{}{} {g}", e.name, e.labels);
                }
                Value::Histogram {
                    bounds,
                    counts,
                    sum,
                    count,
                } => {
                    let base = e.labels.trim_end_matches('}').trim_start_matches('{');
                    let sep = if base.is_empty() { "" } else { "," };
                    for (b, c) in bounds.iter().zip(counts) {
                        let _ = writeln!(out, "{}_bucket{{{base}{sep}le=\"{b}\"}} {c}", e.name);
                    }
                    let _ = writeln!(out, "{}_bucket{{{base}{sep}le=\"+Inf\"}} {count}", e.name);
                    let _ = writeln!(out, "{}_sum{} {sum}", e.name, e.labels);
                    let _ = writeln!(out, "{}_count{} {count}", e.name, e.labels);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_order_is_deterministic() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        // Insert in different orders; snapshots must render identically.
        a.inc("z_total", &[], Stability::Stable, 1);
        a.inc("a_total", &[("op", "scan")], Stability::Stable, 2);
        a.inc("a_total", &[("op", "join")], Stability::Stable, 3);
        b.inc("a_total", &[("op", "join")], Stability::Stable, 3);
        b.inc("z_total", &[], Stability::Stable, 1);
        b.inc("a_total", &[("op", "scan")], Stability::Stable, 2);
        assert_eq!(
            a.snapshot().prometheus_text(),
            b.snapshot().prometheus_text()
        );
    }

    #[test]
    fn stable_text_excludes_volatile_metrics() {
        let r = MetricsRegistry::new();
        r.inc("midq_rows_out_total", &[], Stability::Stable, 7);
        r.gauge_max(
            "midq_broker_high_water_bytes",
            &[],
            Stability::Volatile,
            4096.0,
        );
        let snap = r.snapshot();
        assert!(snap.prometheus_text().contains("high_water"));
        assert!(!snap.stable_text().contains("high_water"));
        assert!(snap.stable_text().contains("midq_rows_out_total 7"));
    }

    #[test]
    fn histogram_buckets_and_exposition() {
        let r = MetricsRegistry::new();
        for v in [1.0, 3.0, 12.0, 200.0] {
            r.observe(
                "midq_estimation_inaccuracy",
                &[],
                Stability::Stable,
                &INACCURACY_BUCKETS,
                v,
            );
        }
        let text = r.snapshot().prometheus_text();
        assert!(text.contains("# TYPE midq_estimation_inaccuracy histogram"));
        assert!(text.contains("midq_estimation_inaccuracy_bucket{le=\"1\"} 1"));
        assert!(text.contains("midq_estimation_inaccuracy_bucket{le=\"4\"} 2"));
        assert!(text.contains("midq_estimation_inaccuracy_bucket{le=\"128\"} 3"));
        assert!(text.contains("midq_estimation_inaccuracy_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("midq_estimation_inaccuracy_sum 216"));
        assert!(text.contains("midq_estimation_inaccuracy_count 4"));
    }

    #[test]
    fn absorb_adds_counters_and_maxes_gauges() {
        let a = MetricsRegistry::new();
        a.inc("c_total", &[], Stability::Stable, 2);
        a.gauge_max("g", &[], Stability::Volatile, 10.0);
        a.observe("h", &[], Stability::Stable, &[1.0, 2.0], 1.5);
        let b = MetricsRegistry::new();
        b.inc("c_total", &[], Stability::Stable, 3);
        b.gauge_max("g", &[], Stability::Volatile, 4.0);
        b.observe("h", &[], Stability::Stable, &[1.0, 2.0], 0.5);
        a.absorb(&b.snapshot());
        let snap = a.snapshot();
        assert_eq!(snap.counter("c_total"), 5);
        assert_eq!(snap.gauge("g"), Some(10.0));
        assert!(snap.prometheus_text().contains("h_count 2"));
    }
}
