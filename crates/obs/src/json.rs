//! Minimal JSON helpers: string escaping for the emit path and a tiny
//! field extractor for consumers of the JSONL trace (bench figures,
//! tests). The build has no serde; the trace format is flat objects
//! with string/number/bool values, which is all these helpers handle.

use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (quotes included).
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Extract the raw value of `key` from a flat JSON object line:
/// `{"a":1,"b":"x"}` → `json_raw(line, "a") == Some("1")`,
/// `json_raw(line, "b") == Some("\"x\"")`. Returns the value as it
/// appears in the line (strings keep their quotes, escapes intact).
pub fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let mut search_from = 0;
    loop {
        let rel = line[search_from..].find(&needle)?;
        let at = search_from + rel;
        // The match must be a key, not a substring of a value: keys in
        // our flat format are always preceded by `{` or `,`.
        let ok = at == 0
            || matches!(line.as_bytes()[at - 1], b'{' | b',') && !is_inside_string(&line[..at]);
        if ok {
            let start = at + needle.len();
            return Some(value_slice(&line[start..]));
        }
        search_from = at + needle.len();
    }
}

/// True if an opening quote in `prefix` is still unclosed.
fn is_inside_string(prefix: &str) -> bool {
    let mut inside = false;
    let mut escape = false;
    for b in prefix.bytes() {
        if escape {
            escape = false;
        } else if b == b'\\' {
            escape = true;
        } else if b == b'"' {
            inside = !inside;
        }
    }
    inside
}

/// The value starting at the beginning of `rest`, up to the next
/// top-level `,` or `}`.
fn value_slice(rest: &str) -> &str {
    if rest.starts_with('"') {
        let mut escape = false;
        for (i, b) in rest.bytes().enumerate().skip(1) {
            if escape {
                escape = false;
            } else if b == b'\\' {
                escape = true;
            } else if b == b'"' {
                return &rest[..=i];
            }
        }
        rest
    } else {
        let end = rest
            .bytes()
            .position(|b| b == b',' || b == b'}')
            .unwrap_or(rest.len());
        &rest[..end]
    }
}

/// `json_raw` narrowed to an unsigned integer value.
pub fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

/// `json_raw` narrowed to a float value.
pub fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_raw(line, key)?.parse().ok()
}

/// `json_raw` narrowed to a string value, unescaped.
pub fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = json_raw(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(c);
                }
            }
            Some(c) => out.push(c),
            None => break,
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escaped_string() {
        let mut line = String::from("{\"cause\":");
        write_json_string(&mut line, "a \"b\"\n\tc\\d");
        line.push('}');
        assert_eq!(json_str(&line, "cause").unwrap(), "a \"b\"\n\tc\\d");
    }

    #[test]
    fn extracts_numbers_and_ignores_value_substrings() {
        let line = "{\"label\":\"node\\\":9\",\"node\":4,\"inaccuracy\":12.5}";
        assert_eq!(json_u64(line, "node"), Some(4));
        assert_eq!(json_f64(line, "inaccuracy"), Some(12.5));
        assert_eq!(json_u64(line, "missing"), None);
    }
}
