//! Event sinks: where scoped emissions go.
//!
//! A sink receives `(span, event)` pairs — the span identifies the
//! emitting job (id, label) and carries a per-job sequence number, so
//! traces from a concurrent workload can be demultiplexed and ordered
//! per job even though sinks interleave across jobs. Sink guarantees:
//!
//! * **Lock-cheap** — one short mutex hold per event, no allocation on
//!   the hot path beyond the rendered record itself;
//! * **Never fallible** — a full ring overwrites its oldest record, a
//!   JSONL sink only buffers (writing to disk is an explicit,
//!   post-execution call);
//! * **Never on the simulated clock** — sinks do not charge
//!   `SimClock`, so enabling tracing cannot change a query's simulated
//!   cost (asserted by the overhead test).

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::ObsEvent;

/// Identity of the emitting job, attached to every record.
#[derive(Debug, Clone)]
pub struct SpanInfo {
    /// Workload job index (0 for ad-hoc queries).
    pub job: u64,
    /// Human label (query name); empty for unlabeled spans.
    pub label: Arc<str>,
    /// Per-span monotone sequence number (orders records of one job).
    pub seq: u64,
}

/// A destination for observability events.
pub trait ObsSink: Send + Sync {
    fn emit(&self, span: &SpanInfo, event: &ObsEvent);
}

/// One structured record as captured by [`RingSink`].
#[derive(Debug, Clone)]
pub struct TraceRecord {
    pub job: u64,
    pub label: Arc<str>,
    pub seq: u64,
    pub event: ObsEvent,
}

/// A bounded in-memory ring of structured records: the newest
/// `capacity` events, oldest evicted first. Cheap enough to leave on.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
    total: AtomicU64,
}

impl RingSink {
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            total: AtomicU64::new(0),
        }
    }

    /// Every event ever emitted (including evicted ones).
    pub fn total_emitted(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Copy of the retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Drop all retained records (the total keeps counting).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }
}

impl ObsSink for RingSink {
    fn emit(&self, span: &SpanInfo, event: &ObsEvent) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(TraceRecord {
            job: span.job,
            label: span.label.clone(),
            seq: span.seq,
            event: event.clone(),
        });
    }
}

/// Buffers events as JSONL lines:
/// `{"job":0,"label":"Q10","seq":3,"event":"collector",…}`.
/// Lines accumulate in memory; [`JsonlSink::write_to`] persists them.
#[derive(Debug, Default)]
pub struct JsonlSink {
    lines: Mutex<Vec<String>>,
}

impl JsonlSink {
    pub fn new() -> JsonlSink {
        JsonlSink::default()
    }

    /// Number of buffered lines.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy of the buffered lines, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().clone()
    }

    /// All lines joined with `\n` (trailing newline included when
    /// non-empty).
    pub fn dump(&self) -> String {
        let lines = self.lines.lock();
        let mut out = String::new();
        for l in lines.iter() {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Write the buffered trace to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.dump())
    }

    pub fn clear(&self) {
        self.lines.lock().clear();
    }
}

impl ObsSink for JsonlSink {
    fn emit(&self, span: &SpanInfo, event: &ObsEvent) {
        let mut line = String::with_capacity(96);
        let _ = write!(line, "{{\"job\":{},\"label\":", span.job);
        crate::json::write_json_string(&mut line, &span.label);
        let _ = write!(line, ",\"seq\":{},", span.seq);
        event.write_json_fields(&mut line);
        line.push('}');
        self.lines.lock().push(line);
    }
}

/// Fans one emission out to several sinks (e.g. ring + JSONL).
pub struct TeeSink {
    sinks: Vec<Arc<dyn ObsSink>>,
}

impl TeeSink {
    pub fn new(sinks: Vec<Arc<dyn ObsSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl ObsSink for TeeSink {
    fn emit(&self, span: &SpanInfo, event: &ObsEvent) {
        for s in &self.sinks {
            s.emit(span, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64) -> SpanInfo {
        SpanInfo {
            job: 2,
            label: Arc::from("Q10"),
            seq,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_total() {
        let ring = RingSink::new(2);
        for i in 0..3 {
            ring.emit(
                &span(i),
                &ObsEvent::SegmentStart {
                    attempt: i as u32 + 1,
                    plan_nodes: 5,
                },
            );
        }
        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 1, "oldest record evicted");
        assert_eq!(ring.total_emitted(), 3);
    }

    #[test]
    fn jsonl_lines_are_parseable_by_the_extractor() {
        let sink = JsonlSink::new();
        sink.emit(
            &span(7),
            &ObsEvent::Collector {
                node: 4,
                observed_rows: 1200,
                estimated_rows: 100.0,
                inaccuracy: 12.0,
                complete: true,
            },
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let l = &lines[0];
        assert_eq!(
            crate::json::json_str(l, "event").as_deref(),
            Some("collector")
        );
        assert_eq!(crate::json::json_str(l, "label").as_deref(), Some("Q10"));
        assert_eq!(crate::json::json_u64(l, "job"), Some(2));
        assert_eq!(crate::json::json_u64(l, "seq"), Some(7));
        assert_eq!(crate::json::json_u64(l, "observed_rows"), Some(1200));
        assert_eq!(crate::json::json_f64(l, "inaccuracy"), Some(12.0));
    }

    #[test]
    fn tee_reaches_every_sink() {
        let ring = Arc::new(RingSink::new(8));
        let jsonl = Arc::new(JsonlSink::new());
        let tee = TeeSink::new(vec![ring.clone(), jsonl.clone()]);
        tee.emit(&span(0), &ObsEvent::QueryStart { mode: "full" });
        assert_eq!(ring.total_emitted(), 1);
        assert_eq!(jsonl.len(), 1);
    }
}
