//! The typed event taxonomy of the observability bus.
//!
//! Every event names one decision or state transition of the
//! re-optimization machinery (KabraD98 §3–§4): collector checkpoints
//! carry the estimated-vs-observed cardinality and the resulting
//! inaccuracy factor, re-optimization triggers carry the SCIA decision
//! together with both cost estimates, and the segment/lease/fault
//! events frame them with the execution context they fired in.
//!
//! Events serialize to a flat, hand-rolled JSON object (the build has
//! no serde); [`ObsEvent::write_json_fields`] appends the event's
//! `"event":"<kind>"` discriminator and payload fields to an envelope
//! the sink owns (sequence number, job id, label).

use std::fmt::Write as _;

/// How a segment attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentOutcome {
    /// Ran to completion; the query is done.
    Done,
    /// Unwound on a plan-switch point; the remainder is re-planned.
    PlanSwitch,
    /// Failed with an error (possibly retried as a fresh attempt).
    Error,
}

impl SegmentOutcome {
    pub fn as_str(self) -> &'static str {
        match self {
            SegmentOutcome::Done => "done",
            SegmentOutcome::PlanSwitch => "plan_switch",
            SegmentOutcome::Error => "error",
        }
    }
}

/// The SCIA verdict at a potential re-optimization point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptVerdict {
    /// Divergence stayed below the re-optimization threshold (θ2).
    BelowThreshold,
    /// Equation 1 skipped re-optimization: the optimizer call itself
    /// would cost too much relative to the remaining work (θ1).
    Eq1Skip,
    /// The re-planned remainder plus materialization does not beat
    /// finishing the current plan.
    RejectCost,
    /// The switch is taken; the remainder is re-planned.
    Accept,
}

impl ReoptVerdict {
    pub fn as_str(self) -> &'static str {
        match self {
            ReoptVerdict::BelowThreshold => "below_threshold",
            ReoptVerdict::Eq1Skip => "eq1_skip",
            ReoptVerdict::RejectCost => "reject_cost",
            ReoptVerdict::Accept => "accept",
        }
    }
}

/// One typed observability event. Numeric fields are plain integers /
/// floats so the JSONL rendering is deterministic.
#[derive(Debug, Clone)]
pub enum ObsEvent {
    /// A query entered the engine.
    QueryStart {
        /// Re-optimization mode (`off`, `memory`, `plan`, `full`).
        mode: &'static str,
    },
    /// One segment attempt started.
    SegmentStart {
        /// 1-based attempt number within the query.
        attempt: u32,
        /// Number of operators in the (current) physical plan.
        plan_nodes: u64,
    },
    /// One segment attempt ended.
    SegmentEnd {
        attempt: u32,
        outcome: SegmentOutcome,
    },
    /// A statistics collector checkpointed: observed cardinality
    /// against the optimizer's estimate.
    Collector {
        /// Plan node id of the collector site.
        node: u64,
        observed_rows: u64,
        estimated_rows: f64,
        /// Inaccuracy factor `max(obs/est, est/obs)` (≥ 1; 1 = exact).
        inaccuracy: f64,
        /// True for a final checkpoint, false for a provisional
        /// (mid-stream) report.
        complete: bool,
    },
    /// The SCIA weighed re-planning at a collector checkpoint.
    Reopt {
        /// Plan node the remainder would be cut at.
        node: u64,
        verdict: ReoptVerdict,
        /// Estimated cost (ms) of the re-planned remainder, including
        /// materialization of the cut subtree. 0 when not computed.
        t_new_ms: f64,
        /// Estimated cost (ms) of finishing the current plan.
        t_cur_ms: f64,
        /// Observed degradation factor of the running estimate.
        degradation: f64,
        /// Statistics divergence that triggered the consideration.
        divergence: f64,
    },
    /// The memory manager changed an operator's grant mid-query.
    GrantChange {
        node: u64,
        old_bytes: u64,
        new_bytes: u64,
    },
    /// A query was admitted by the global broker.
    LeaseAcquire {
        min_bytes: u64,
        desired_bytes: u64,
        granted_bytes: u64,
    },
    /// A running query asked its lease to grow.
    LeaseGrow {
        asked_bytes: u64,
        granted_bytes: u64,
    },
    /// A grant decision was denied (fault injection or contention).
    LeaseDeny {
        /// `acquire` or `grow`.
        site: &'static str,
    },
    /// An operator ran out of memory and spilled to disk.
    Spill {
        node: u64,
        operator: &'static str,
        bytes: u64,
    },
    /// A transient fault was absorbed; the segment re-runs.
    SegmentRetry {
        /// 1-based retry number.
        retry: u32,
        limit: u32,
        cause: String,
    },
    /// End-of-query cleanup (temp tables, artifacts, spill files).
    Cleanup {
        temp_tables: u64,
        temp_files: u64,
        failures: u64,
    },
    /// An exchange stage finished routing/merging its input.
    Exchange {
        /// Plan node id of the exchange.
        node: u64,
        /// `repartition`, `merge` or `broadcast`.
        mode: &'static str,
        /// Partition count the stage ran with.
        partitions: u64,
        /// Logical bucket count rows were routed into.
        buckets: u64,
        /// Total rows through the exchange.
        rows: u64,
    },
    /// Per-partition loads at an exchange exceeded the skew threshold.
    SkewVerdict {
        /// Plan node id of the exchange.
        node: u64,
        /// Observed max/mean per-partition cardinality ratio.
        ratio: f64,
        /// Configured threshold θ the ratio was compared against.
        theta: f64,
        /// `rebalance` (buckets reassigned) or `none` (kept static).
        action: &'static str,
    },
    /// An injected crash (simulated process kill) abandoned the
    /// query's in-flight state without cleanup.
    CrashInjected {
        /// Engine query id the crash hit (recovery is keyed by it).
        query_id: u64,
        /// Where the kill landed (the error message of the crash).
        cause: String,
    },
    /// Recovery of a crashed query began.
    RecoveryStarted {
        query_id: u64,
        /// 1-based recovery generation (2 = recovering a crash that
        /// itself happened during recovery).
        generation: u32,
        /// Checkpoint records found in the manifest.
        manifest_records: u64,
    },
    /// Manifest validation finished: how much completed work survived.
    SegmentsSalvaged {
        query_id: u64,
        /// Checkpointed segments that validated (rows + fingerprint).
        salvaged: u64,
        /// Rows re-scanned by the charged validation pass.
        validated_rows: u64,
    },
    /// Recovery swept the crashed generation's unusable leftovers.
    OrphansSwept {
        query_id: u64,
        /// Catalog temp-table entries dropped (placeholders, invalid
        /// checkpoints).
        tables: u64,
        /// Anonymous scratch files dropped (partial materializations,
        /// spill files).
        files: u64,
    },
    /// A cache probe spliced a `CachedScan` over a matching sub-tree.
    CacheHit {
        /// Fingerprint of the matched sub-plan.
        fingerprint: u64,
        /// Cache table spliced in.
        table: String,
        /// Exact rows of the cached result.
        rows: u64,
        /// Simulated ms the producing sub-plan cost (the saving).
        saved_ms: f64,
        /// Bytes not re-materialized.
        saved_bytes: u64,
    },
    /// A cache probe found no usable entry for the whole plan.
    CacheMiss {
        /// Sub-tree fingerprints probed (root-first count).
        probed: u64,
    },
    /// A plan-switch materialization was promoted into the cache.
    CachePromote {
        fingerprint: u64,
        /// Cache table the temp was renamed to.
        table: String,
        rows: u64,
        bytes: u64,
        /// Producer cost recorded as the entry's benefit.
        build_cost_ms: f64,
    },
    /// Budget pressure retired a cache entry.
    CacheEvict {
        fingerprint: u64,
        table: String,
        bytes: u64,
    },
    /// The optimizer overrode a cardinality estimate with an observed
    /// value from the feedback store.
    FeedbackApplied {
        /// Fingerprint of the sub-plan whose estimate was overridden.
        fingerprint: u64,
        /// The optimizer's catalog-derived estimate.
        estimated_rows: f64,
        /// The observed row count that replaced it.
        observed_rows: f64,
    },
    /// The plan cache served a rebound template; enumeration skipped.
    PlanCacheHit {
        /// Optimizer work units the cold optimization paid (skipped).
        saved_work: u64,
    },
    /// The plan cache had no usable template; full optimization ran
    /// and a fresh template was entered.
    PlanCacheMiss,
    /// A cached plan went stale (dependency write or accumulated
    /// feedback) and was re-enumerated from scratch.
    PlanCacheStale {
        /// `write` or `feedback`.
        reason: &'static str,
    },
    /// Capacity pressure retired a plan-cache entry.
    PlanCacheEvict {
        /// Normalized key of the evicted family.
        key: String,
    },
    /// Repeated large estimation errors on one base-table column
    /// triggered an incremental histogram rebuild.
    HistogramRefresh {
        table: String,
        column: String,
        /// Inaccuracy factor of the hit that crossed the threshold.
        error_factor: f64,
    },
    /// The query left the engine.
    QueryEnd {
        /// `ok` or the error kind (`storage`, `cancelled`, `oom`, …).
        outcome: String,
        rows: u64,
        sim_ms: f64,
        pages_read: u64,
        pages_written: u64,
        cpu_ops: u64,
        opt_work: u64,
        plan_switches: u64,
        segment_retries: u64,
        memory_reallocs: u64,
        collector_reports: u64,
    },
}

impl ObsEvent {
    /// The `"event"` discriminator used in the JSONL rendering.
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::QueryStart { .. } => "query_start",
            ObsEvent::SegmentStart { .. } => "segment_start",
            ObsEvent::SegmentEnd { .. } => "segment_end",
            ObsEvent::Collector { .. } => "collector",
            ObsEvent::Reopt { .. } => "reopt",
            ObsEvent::GrantChange { .. } => "grant_change",
            ObsEvent::LeaseAcquire { .. } => "lease_acquire",
            ObsEvent::LeaseGrow { .. } => "lease_grow",
            ObsEvent::LeaseDeny { .. } => "lease_deny",
            ObsEvent::Spill { .. } => "spill",
            ObsEvent::SegmentRetry { .. } => "segment_retry",
            ObsEvent::Cleanup { .. } => "cleanup",
            ObsEvent::Exchange { .. } => "exchange",
            ObsEvent::SkewVerdict { .. } => "skew_verdict",
            ObsEvent::CrashInjected { .. } => "crash_injected",
            ObsEvent::RecoveryStarted { .. } => "recovery_started",
            ObsEvent::SegmentsSalvaged { .. } => "segments_salvaged",
            ObsEvent::OrphansSwept { .. } => "orphans_swept",
            ObsEvent::CacheHit { .. } => "cache_hit",
            ObsEvent::CacheMiss { .. } => "cache_miss",
            ObsEvent::CachePromote { .. } => "cache_promote",
            ObsEvent::CacheEvict { .. } => "cache_evict",
            ObsEvent::FeedbackApplied { .. } => "feedback_applied",
            ObsEvent::PlanCacheHit { .. } => "plan_cache_hit",
            ObsEvent::PlanCacheMiss => "plan_cache_miss",
            ObsEvent::PlanCacheStale { .. } => "plan_cache_reoptimized",
            ObsEvent::PlanCacheEvict { .. } => "plan_cache_evict",
            ObsEvent::HistogramRefresh { .. } => "histogram_refresh",
            ObsEvent::QueryEnd { .. } => "query_end",
        }
    }

    /// Append `"event":"<kind>"` plus the payload fields (each
    /// preceded by a comma) to a JSON object under construction.
    pub fn write_json_fields(&self, out: &mut String) {
        let _ = write!(out, "\"event\":\"{}\"", self.kind());
        match self {
            ObsEvent::QueryStart { mode } => {
                let _ = write!(out, ",\"mode\":\"{mode}\"");
            }
            ObsEvent::SegmentStart {
                attempt,
                plan_nodes,
            } => {
                let _ = write!(out, ",\"attempt\":{attempt},\"plan_nodes\":{plan_nodes}");
            }
            ObsEvent::SegmentEnd { attempt, outcome } => {
                let _ = write!(
                    out,
                    ",\"attempt\":{attempt},\"outcome\":\"{}\"",
                    outcome.as_str()
                );
            }
            ObsEvent::Collector {
                node,
                observed_rows,
                estimated_rows,
                inaccuracy,
                complete,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"observed_rows\":{observed_rows},\
                     \"estimated_rows\":{estimated_rows},\"inaccuracy\":{inaccuracy},\
                     \"complete\":{complete}"
                );
            }
            ObsEvent::Reopt {
                node,
                verdict,
                t_new_ms,
                t_cur_ms,
                degradation,
                divergence,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"verdict\":\"{}\",\"t_new_ms\":{t_new_ms},\
                     \"t_cur_ms\":{t_cur_ms},\"degradation\":{degradation},\
                     \"divergence\":{divergence}",
                    verdict.as_str()
                );
            }
            ObsEvent::GrantChange {
                node,
                old_bytes,
                new_bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"old_bytes\":{old_bytes},\"new_bytes\":{new_bytes}"
                );
            }
            ObsEvent::LeaseAcquire {
                min_bytes,
                desired_bytes,
                granted_bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"min_bytes\":{min_bytes},\"desired_bytes\":{desired_bytes},\
                     \"granted_bytes\":{granted_bytes}"
                );
            }
            ObsEvent::LeaseGrow {
                asked_bytes,
                granted_bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"asked_bytes\":{asked_bytes},\"granted_bytes\":{granted_bytes}"
                );
            }
            ObsEvent::LeaseDeny { site } => {
                let _ = write!(out, ",\"site\":\"{site}\"");
            }
            ObsEvent::Spill {
                node,
                operator,
                bytes,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"operator\":\"{operator}\",\"bytes\":{bytes}"
                );
            }
            ObsEvent::SegmentRetry {
                retry,
                limit,
                cause,
            } => {
                let _ = write!(out, ",\"retry\":{retry},\"limit\":{limit},\"cause\":");
                crate::json::write_json_string(out, cause);
            }
            ObsEvent::Cleanup {
                temp_tables,
                temp_files,
                failures,
            } => {
                let _ = write!(
                    out,
                    ",\"temp_tables\":{temp_tables},\"temp_files\":{temp_files},\
                     \"failures\":{failures}"
                );
            }
            ObsEvent::Exchange {
                node,
                mode,
                partitions,
                buckets,
                rows,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"mode\":\"{mode}\",\"partitions\":{partitions},\
                     \"buckets\":{buckets},\"rows\":{rows}"
                );
            }
            ObsEvent::SkewVerdict {
                node,
                ratio,
                theta,
                action,
            } => {
                let _ = write!(
                    out,
                    ",\"node\":{node},\"ratio\":{ratio},\"theta\":{theta},\
                     \"action\":\"{action}\""
                );
            }
            ObsEvent::CrashInjected { query_id, cause } => {
                let _ = write!(out, ",\"query_id\":{query_id},\"cause\":");
                crate::json::write_json_string(out, cause);
            }
            ObsEvent::RecoveryStarted {
                query_id,
                generation,
                manifest_records,
            } => {
                let _ = write!(
                    out,
                    ",\"query_id\":{query_id},\"generation\":{generation},\
                     \"manifest_records\":{manifest_records}"
                );
            }
            ObsEvent::SegmentsSalvaged {
                query_id,
                salvaged,
                validated_rows,
            } => {
                let _ = write!(
                    out,
                    ",\"query_id\":{query_id},\"salvaged\":{salvaged},\
                     \"validated_rows\":{validated_rows}"
                );
            }
            ObsEvent::OrphansSwept {
                query_id,
                tables,
                files,
            } => {
                let _ = write!(
                    out,
                    ",\"query_id\":{query_id},\"tables\":{tables},\"files\":{files}"
                );
            }
            ObsEvent::CacheHit {
                fingerprint,
                table,
                rows,
                saved_ms,
                saved_bytes,
            } => {
                let _ = write!(out, ",\"fingerprint\":\"{fingerprint:016x}\",\"table\":");
                crate::json::write_json_string(out, table);
                let _ = write!(
                    out,
                    ",\"rows\":{rows},\"saved_ms\":{saved_ms},\"saved_bytes\":{saved_bytes}"
                );
            }
            ObsEvent::CacheMiss { probed } => {
                let _ = write!(out, ",\"probed\":{probed}");
            }
            ObsEvent::CachePromote {
                fingerprint,
                table,
                rows,
                bytes,
                build_cost_ms,
            } => {
                let _ = write!(out, ",\"fingerprint\":\"{fingerprint:016x}\",\"table\":");
                crate::json::write_json_string(out, table);
                let _ = write!(
                    out,
                    ",\"rows\":{rows},\"bytes\":{bytes},\"build_cost_ms\":{build_cost_ms}"
                );
            }
            ObsEvent::CacheEvict {
                fingerprint,
                table,
                bytes,
            } => {
                let _ = write!(out, ",\"fingerprint\":\"{fingerprint:016x}\",\"table\":");
                crate::json::write_json_string(out, table);
                let _ = write!(out, ",\"bytes\":{bytes}");
            }
            ObsEvent::FeedbackApplied {
                fingerprint,
                estimated_rows,
                observed_rows,
            } => {
                let _ = write!(
                    out,
                    ",\"fingerprint\":\"{fingerprint:016x}\",\
                     \"estimated_rows\":{estimated_rows},\"observed_rows\":{observed_rows}"
                );
            }
            ObsEvent::PlanCacheHit { saved_work } => {
                let _ = write!(out, ",\"saved_work\":{saved_work}");
            }
            ObsEvent::PlanCacheMiss => {}
            ObsEvent::PlanCacheStale { reason } => {
                let _ = write!(out, ",\"reason\":\"{reason}\"");
            }
            ObsEvent::PlanCacheEvict { key } => {
                let _ = write!(out, ",\"key\":");
                crate::json::write_json_string(out, key);
            }
            ObsEvent::HistogramRefresh {
                table,
                column,
                error_factor,
            } => {
                let _ = write!(out, ",\"table\":");
                crate::json::write_json_string(out, table);
                let _ = write!(out, ",\"column\":");
                crate::json::write_json_string(out, column);
                let _ = write!(out, ",\"error_factor\":{error_factor}");
            }
            ObsEvent::QueryEnd {
                outcome,
                rows,
                sim_ms,
                pages_read,
                pages_written,
                cpu_ops,
                opt_work,
                plan_switches,
                segment_retries,
                memory_reallocs,
                collector_reports,
            } => {
                let _ = write!(out, ",\"outcome\":");
                crate::json::write_json_string(out, outcome);
                let _ = write!(
                    out,
                    ",\"rows\":{rows},\"sim_ms\":{sim_ms},\"pages_read\":{pages_read},\
                     \"pages_written\":{pages_written},\"cpu_ops\":{cpu_ops},\
                     \"opt_work\":{opt_work},\"plan_switches\":{plan_switches},\
                     \"segment_retries\":{segment_retries},\"memory_reallocs\":{memory_reallocs},\
                     \"collector_reports\":{collector_reports}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_event_renders_flat_json_fields() {
        let ev = ObsEvent::Collector {
            node: 4,
            observed_rows: 1200,
            estimated_rows: 100.0,
            inaccuracy: 12.0,
            complete: true,
        };
        let mut out = String::new();
        ev.write_json_fields(&mut out);
        assert_eq!(
            out,
            "\"event\":\"collector\",\"node\":4,\"observed_rows\":1200,\
             \"estimated_rows\":100,\"inaccuracy\":12,\"complete\":true"
        );
    }

    #[test]
    fn recovery_events_render_flat_json_fields() {
        let ev = ObsEvent::SegmentsSalvaged {
            query_id: 7,
            salvaged: 2,
            validated_rows: 1500,
        };
        let mut out = String::new();
        ev.write_json_fields(&mut out);
        assert_eq!(
            out,
            "\"event\":\"segments_salvaged\",\"query_id\":7,\"salvaged\":2,\
             \"validated_rows\":1500"
        );
        let ev = ObsEvent::CrashInjected {
            query_id: 7,
            cause: "kill at boundary #2".into(),
        };
        let mut out = String::new();
        ev.write_json_fields(&mut out);
        assert!(out.starts_with("\"event\":\"crash_injected\",\"query_id\":7"));
        assert!(out.contains("\"cause\":\"kill at boundary #2\""));
    }

    #[test]
    fn retry_cause_is_escaped() {
        let ev = ObsEvent::SegmentRetry {
            retry: 1,
            limit: 3,
            cause: "fault \"quoted\"\nline".into(),
        };
        let mut out = String::new();
        ev.write_json_fields(&mut out);
        assert!(
            out.contains("\"cause\":\"fault \\\"quoted\\\"\\nline\""),
            "{out}"
        );
    }
}
