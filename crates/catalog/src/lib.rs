//! # mq-catalog — system catalogs
//!
//! Tables, their schemas, indexes, and — centrally for this paper —
//! their *stored statistics*: row counts, page counts, per-column
//! min/max, distinct counts and histograms, built by [`Catalog::analyze`].
//!
//! The catalog also tracks **update activity** (inserts since the last
//! ANALYZE): the paper's statistics-collectors insertion algorithm
//! raises a statistic's inaccuracy potential one level "if there has
//! been significant update activity since the last time statistics were
//! collected" (§2.5). Experiments create estimation error honestly by
//! loading data after ANALYZE, exactly how production catalogs go stale.

pub mod stats;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use mq_common::{DataType, Field, MqError, Result, Row, Schema, TableId, Value};
use mq_stats::{ColumnAccumulator, HistogramKind};
use mq_storage::Storage;

pub use stats::{ColumnStats, TableStats};

/// A registered table.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// Catalog id.
    pub id: TableId,
    /// Table name (unique).
    pub name: String,
    /// Schema; fields are qualified with the table name.
    pub schema: Schema,
    /// Heap file holding the rows.
    pub file: mq_common::FileId,
    /// Secondary B+-tree indexes, keyed by bare column name.
    pub indexes: HashMap<String, mq_common::IndexId>,
    /// Stored statistics from the last ANALYZE (if any).
    pub stats: Option<TableStats>,
    /// Rows inserted since the last ANALYZE.
    pub inserts_since_analyze: u64,
    /// Data version: a catalog-global epoch stamped at creation and
    /// bumped on every write. Cross-query caches key their validity on
    /// it — any bump invalidates entries derived from this table.
    pub data_version: u64,
}

impl TableEntry {
    /// Update activity as a fraction of the analyzed row count —
    /// the §2.5 staleness signal.
    pub fn update_activity(&self) -> f64 {
        match &self.stats {
            Some(s) if s.rows > 0 => self.inserts_since_analyze as f64 / s.rows as f64,
            Some(_) => {
                if self.inserts_since_analyze > 0 {
                    1.0
                } else {
                    0.0
                }
            }
            None => 1.0,
        }
    }
}

/// The catalog: a shared registry of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    tables: HashMap<String, TableEntry>,
    next_id: u32,
    /// Monotone data-version epoch shared by all tables.
    epoch: u64,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Create a table with bare-named fields (they get qualified with
    /// the table name), backed by a fresh heap file.
    pub fn create_table(
        &self,
        storage: &Storage,
        name: &str,
        columns: Vec<(&str, DataType)>,
    ) -> Result<TableId> {
        let mut inner = self.inner.lock();
        if inner.tables.contains_key(name) {
            return Err(MqError::AlreadyExists(format!("table {name}")));
        }
        let fields = columns
            .into_iter()
            .map(|(c, t)| Field::qualified(name, c, t))
            .collect();
        let schema = Schema::new(fields)?;
        let id = TableId(inner.next_id);
        inner.next_id += 1;
        inner.epoch += 1;
        let data_version = inner.epoch;
        let file = storage.create_file();
        inner.tables.insert(
            name.to_string(),
            TableEntry {
                id,
                name: name.to_string(),
                schema,
                file,
                indexes: HashMap::new(),
                stats: None,
                inserts_since_analyze: 0,
                data_version,
            },
        );
        Ok(id)
    }

    /// Register a temp table over an existing file with an existing
    /// schema (used when the re-optimizer materializes an intermediate
    /// result and re-plans the remainder query over it).
    pub fn register_materialized(
        &self,
        name: &str,
        file: mq_common::FileId,
        schema: Schema,
        stats: TableStats,
    ) -> Result<TableId> {
        let mut inner = self.inner.lock();
        if inner.tables.contains_key(name) {
            return Err(MqError::AlreadyExists(format!("table {name}")));
        }
        let id = TableId(inner.next_id);
        inner.next_id += 1;
        inner.epoch += 1;
        let data_version = inner.epoch;
        inner.tables.insert(
            name.to_string(),
            TableEntry {
                id,
                name: name.to_string(),
                schema,
                file,
                indexes: HashMap::new(),
                stats: Some(stats),
                inserts_since_analyze: 0,
                data_version,
            },
        );
        Ok(id)
    }

    /// Remove a table from the catalog (does not drop the file).
    pub fn drop_table(&self, name: &str) -> Result<TableEntry> {
        self.inner
            .lock()
            .tables
            .remove(name)
            .ok_or_else(|| MqError::NotFound(format!("table {name}")))
    }

    /// Copy of a table's entry.
    pub fn table(&self, name: &str) -> Result<TableEntry> {
        self.inner
            .lock()
            .tables
            .get(name)
            .cloned()
            .ok_or_else(|| MqError::NotFound(format!("table {name}")))
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Insert a row, maintaining any indexes and the staleness counter.
    pub fn insert_row(&self, storage: &Storage, table: &str, row: Row) -> Result<()> {
        let (file, schema, indexes) = {
            let inner = self.inner.lock();
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
            (t.file, t.schema.clone(), t.indexes.clone())
        };
        if row.len() != schema.len() {
            return Err(MqError::SchemaError(format!(
                "row arity {} vs schema arity {} for {table}",
                row.len(),
                schema.len()
            )));
        }
        let rid = storage.append_row(file, &row)?;
        for (col, idx) in &indexes {
            let ci = schema.index_of(col)?;
            storage.index_insert(*idx, row.get(ci), rid)?;
        }
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        let version = inner.epoch;
        if let Some(t) = inner.tables.get_mut(table) {
            t.inserts_since_analyze += 1;
            t.data_version = version;
        }
        Ok(())
    }

    /// Insert a batch of rows as one logical write: the shared epoch is
    /// bumped once and the table's data version moves once, so caches
    /// keyed on the version are invalidated once per statement instead
    /// of once per row. Rows are validated against the schema up front;
    /// a mid-batch storage error leaves earlier rows appended (no
    /// statement-level rollback — same contract as repeated
    /// [`Catalog::insert_row`] calls).
    pub fn insert_rows(&self, storage: &Storage, table: &str, rows: Vec<Row>) -> Result<usize> {
        let (file, schema, indexes) = {
            let inner = self.inner.lock();
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
            (t.file, t.schema.clone(), t.indexes.clone())
        };
        for row in &rows {
            if row.len() != schema.len() {
                return Err(MqError::SchemaError(format!(
                    "row arity {} vs schema arity {} for {table}",
                    row.len(),
                    schema.len()
                )));
            }
        }
        let n = rows.len();
        for row in &rows {
            let rid = storage.append_row(file, row)?;
            for (col, idx) in &indexes {
                let ci = schema.index_of(col)?;
                storage.index_insert(*idx, row.get(ci), rid)?;
            }
        }
        if n > 0 {
            let mut inner = self.inner.lock();
            inner.epoch += 1;
            let version = inner.epoch;
            if let Some(t) = inner.tables.get_mut(table) {
                t.inserts_since_analyze += n as u64;
                t.data_version = version;
            }
        }
        Ok(n)
    }

    /// Current data version of a table (None if unknown). Bumped on
    /// every write; cache entries recorded at an older version are
    /// stale.
    pub fn data_version(&self, table: &str) -> Option<u64> {
        self.inner.lock().tables.get(table).map(|t| t.data_version)
    }

    /// The catalog-global data-version epoch. Snapshots record it so a
    /// restored catalog resumes version numbering where the saved one
    /// stopped — version comparisons against persisted cache metadata
    /// stay meaningful across the restart.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Raise the epoch to at least `epoch` (no-op if already past it).
    /// Restore-time counterpart of [`Catalog::epoch`].
    pub fn raise_epoch(&self, epoch: u64) {
        let mut inner = self.inner.lock();
        inner.epoch = inner.epoch.max(epoch);
    }

    /// Re-register a table from a snapshot, preserving its exact id,
    /// data version, statistics and staleness counter. The caller has
    /// already recreated the heap file and indexes the entry points at.
    /// Unlike [`Catalog::create_table`] this does *not* bump the epoch:
    /// restoring is not a write, and the stamped versions must survive
    /// byte-for-byte or every persisted cache dependency would
    /// spuriously read as stale.
    pub fn restore_table(&self, entry: TableEntry) -> Result<()> {
        let mut inner = self.inner.lock();
        if inner.tables.contains_key(&entry.name) {
            return Err(MqError::AlreadyExists(format!("table {}", entry.name)));
        }
        inner.next_id = inner.next_id.max(entry.id.0 + 1);
        inner.epoch = inner.epoch.max(entry.data_version);
        inner.tables.insert(entry.name.clone(), entry);
        Ok(())
    }

    /// Build a B+-tree index on `column`, back-filling existing rows.
    pub fn create_index(&self, storage: &Storage, table: &str, column: &str) -> Result<()> {
        let (file, schema, already) = {
            let inner = self.inner.lock();
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
            (t.file, t.schema.clone(), t.indexes.contains_key(column))
        };
        if already {
            return Err(MqError::AlreadyExists(format!("index on {table}.{column}")));
        }
        let ci = schema.index_of(column)?;
        let idx = storage.create_index()?;
        for item in storage.scan_file(file)? {
            let (rid, row) = item?;
            storage.index_insert(idx, row.get(ci), rid)?;
        }
        let mut inner = self.inner.lock();
        if let Some(t) = inner.tables.get_mut(table) {
            t.indexes.insert(column.to_string(), idx);
        }
        Ok(())
    }

    /// Gather statistics for a table: one scan, per-column accumulators,
    /// histograms of `kind` with `buckets` buckets. Resets the update
    /// counter.
    pub fn analyze(
        &self,
        storage: &Storage,
        table: &str,
        kind: HistogramKind,
        buckets: usize,
        reservoir: usize,
        seed: u64,
    ) -> Result<()> {
        let (file, schema) = {
            let inner = self.inner.lock();
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
            (t.file, t.schema.clone())
        };
        let mut accs: Vec<ColumnAccumulator> = (0..schema.len())
            .map(|i| ColumnAccumulator::new(reservoir, seed.wrapping_add(i as u64)))
            .collect();
        let mut rows = 0u64;
        let mut bytes = 0u64;
        for item in storage.scan_file(file)? {
            let (_, row) = item?;
            rows += 1;
            bytes += row.encoded_len() as u64;
            for (i, acc) in accs.iter_mut().enumerate() {
                acc.observe(row.get(i));
            }
        }
        let pages = storage.file_pages(file)? as u64;
        let mut columns = HashMap::new();
        for (i, acc) in accs.iter().enumerate() {
            let observed = acc.finish(kind, buckets);
            columns.insert(
                schema.field(i).name.to_string(),
                ColumnStats {
                    min: observed.min,
                    max: observed.max,
                    distinct: observed.distinct,
                    null_frac: observed.null_frac,
                    histogram: observed.histogram,
                    histogram_kind: Some(kind),
                    clustering: observed.clustering,
                },
            );
        }
        let avg_row_bytes = if rows > 0 {
            bytes as f64 / rows as f64
        } else {
            0.0
        };
        let mut inner = self.inner.lock();
        if let Some(t) = inner.tables.get_mut(table) {
            t.stats = Some(TableStats {
                rows,
                pages,
                avg_row_bytes,
                columns,
            });
            t.inserts_since_analyze = 0;
        }
        Ok(())
    }

    /// Rebuild statistics for a *single column* from live data: one
    /// scan, one accumulator, histogram of `kind`. The incremental
    /// form of [`Catalog::analyze`] the adaptive-refresh machinery
    /// uses when feedback keeps flagging one column's estimates —
    /// cheaper than a full re-analyze and deliberately *not* resetting
    /// the update-activity counter, since every other column still
    /// carries its old statistics. Requires the table to have been
    /// analyzed before (there must be a stats block to patch).
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_column(
        &self,
        storage: &Storage,
        table: &str,
        column: &str,
        kind: HistogramKind,
        buckets: usize,
        reservoir: usize,
        seed: u64,
    ) -> Result<()> {
        let (file, ci) = {
            let inner = self.inner.lock();
            let t = inner
                .tables
                .get(table)
                .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
            if t.stats.is_none() {
                return Err(MqError::NotFound(format!("stats for {table}")));
            }
            let ci = t
                .schema
                .fields()
                .iter()
                .position(|f| &*f.name == column)
                .ok_or_else(|| MqError::NotFound(format!("column {table}.{column}")))?;
            (t.file, ci)
        };
        let mut acc = ColumnAccumulator::new(reservoir, seed);
        for item in storage.scan_file(file)? {
            let (_, row) = item?;
            acc.observe(row.get(ci));
        }
        let observed = acc.finish(kind, buckets);
        let mut inner = self.inner.lock();
        if let Some(t) = inner.tables.get_mut(table) {
            if let Some(stats) = &mut t.stats {
                stats.columns.insert(
                    column.to_string(),
                    ColumnStats {
                        min: observed.min,
                        max: observed.max,
                        distinct: observed.distinct,
                        null_frac: observed.null_frac,
                        histogram: observed.histogram,
                        histogram_kind: Some(kind),
                        clustering: observed.clustering,
                    },
                );
            }
        }
        Ok(())
    }

    /// Discard a table's statistics (simulate a never-analyzed table).
    pub fn clear_stats(&self, table: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
        t.stats = None;
        Ok(())
    }

    /// Drop the histogram (keeping scalar stats) for one column — used
    /// to give a column "no histogram" (high inaccuracy potential).
    pub fn drop_histogram(&self, table: &str, column: &str) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
        if let Some(stats) = &mut t.stats {
            if let Some(c) = stats.columns.get_mut(column) {
                c.histogram = None;
                c.histogram_kind = None;
                return Ok(());
            }
        }
        Err(MqError::NotFound(format!("stats for {table}.{column}")))
    }

    /// Fold runtime observations back into a table's stored statistics
    /// (§2.2: collected statistics "can also be used to update the
    /// statistics stored in the database catalogs"). `columns` is keyed
    /// by bare column name; only the observed columns are touched, and
    /// an observed column's histogram replaces the stored one only when
    /// the observation actually built one. The update-activity counter
    /// is deliberately *not* reset: columns nobody observed still carry
    /// pre-staleness statistics, so the SCIA must keep treating the
    /// table as stale.
    pub fn apply_observed(
        &self,
        table: &str,
        rows: u64,
        pages: u64,
        avg_row_bytes: f64,
        columns: &HashMap<String, mq_stats::ObservedColumn>,
    ) -> Result<()> {
        let mut inner = self.inner.lock();
        let t = inner
            .tables
            .get_mut(table)
            .ok_or_else(|| MqError::NotFound(format!("table {table}")))?;
        let stats = t.stats.get_or_insert_with(TableStats::default);
        stats.rows = rows;
        stats.pages = pages;
        if avg_row_bytes > 0.0 {
            stats.avg_row_bytes = avg_row_bytes;
        }
        for (name, obs) in columns {
            let entry = stats.columns.entry(name.clone()).or_default();
            entry.min = obs.min.clone();
            entry.max = obs.max.clone();
            entry.distinct = obs.distinct;
            entry.null_frac = obs.null_frac;
            entry.clustering = obs.clustering;
            if let Some(h) = &obs.histogram {
                entry.histogram = Some(h.clone());
                entry.histogram_kind = Some(HistogramKind::MaxDiff);
            }
        }
        Ok(())
    }

    /// Fetch the min/max of a column if analyzed.
    pub fn column_bounds(&self, table: &str, column: &str) -> Option<(Value, Value)> {
        let inner = self.inner.lock();
        let t = inner.tables.get(table)?;
        let s = t.stats.as_ref()?;
        let c = s.columns.get(column)?;
        Some((c.min.clone()?, c.max.clone()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{EngineConfig, SimClock};

    fn setup() -> (Catalog, Storage) {
        let cfg = EngineConfig::default();
        let storage = Storage::new(&cfg, SimClock::new());
        (Catalog::new(), storage)
    }

    fn load_numbers(cat: &Catalog, st: &Storage, n: i64) {
        cat.create_table(st, "nums", vec![("k", DataType::Int), ("v", DataType::Int)])
            .unwrap();
        for i in 0..n {
            cat.insert_row(
                st,
                "nums",
                Row::new(vec![Value::Int(i), Value::Int(i % 10)]),
            )
            .unwrap();
        }
    }

    #[test]
    fn create_and_lookup() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 10);
        let t = cat.table("nums").unwrap();
        assert_eq!(t.schema.len(), 2);
        assert_eq!(t.schema.index_of("nums.k").unwrap(), 0);
        assert!(cat.table("missing").is_err());
        assert_eq!(cat.table_names(), vec!["nums"]);
    }

    #[test]
    fn duplicate_table_rejected() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 1);
        assert!(cat
            .create_table(&st, "nums", vec![("x", DataType::Int)])
            .is_err());
    }

    #[test]
    fn analyze_builds_stats() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 1000);
        cat.analyze(&st, "nums", HistogramKind::MaxDiff, 16, 512, 1)
            .unwrap();
        let t = cat.table("nums").unwrap();
        let s = t.stats.unwrap();
        assert_eq!(s.rows, 1000);
        assert!(s.pages > 0);
        let k = &s.columns["k"];
        assert_eq!(k.min, Some(Value::Int(0)));
        assert_eq!(k.max, Some(Value::Int(999)));
        assert!((k.distinct - 1000.0).abs() / 1000.0 < 0.4);
        let v = &s.columns["v"];
        assert!(v.distinct <= 30.0, "v distinct {}", v.distinct);
        assert!(v.histogram.is_some());
    }

    #[test]
    fn update_activity_tracks_staleness() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 100);
        cat.analyze(&st, "nums", HistogramKind::MaxDiff, 8, 128, 1)
            .unwrap();
        assert_eq!(cat.table("nums").unwrap().update_activity(), 0.0);
        for i in 0..50 {
            cat.insert_row(
                &st,
                "nums",
                Row::new(vec![Value::Int(1000 + i), Value::Int(0)]),
            )
            .unwrap();
        }
        let act = cat.table("nums").unwrap().update_activity();
        assert!((act - 0.5).abs() < 1e-9, "activity {act}");
        // Unanalyzed tables are maximally stale.
        cat.clear_stats("nums").unwrap();
        assert_eq!(cat.table("nums").unwrap().update_activity(), 1.0);
    }

    #[test]
    fn index_maintained_on_insert() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 100);
        cat.create_index(&st, "nums", "v").unwrap();
        // New inserts must land in the index too.
        cat.insert_row(&st, "nums", Row::new(vec![Value::Int(9999), Value::Int(7)]))
            .unwrap();
        let t = cat.table("nums").unwrap();
        let idx = t.indexes["v"];
        let hits = st.index_lookup(idx, &Value::Int(7)).unwrap();
        assert_eq!(hits.len(), 11); // 10 from load + 1 new
        assert!(cat.create_index(&st, "nums", "v").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 1);
        let err = cat
            .insert_row(&st, "nums", Row::new(vec![Value::Int(1)]))
            .unwrap_err();
        assert_eq!(err.kind(), "schema");
    }

    #[test]
    fn drop_histogram_keeps_scalars() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 100);
        cat.analyze(&st, "nums", HistogramKind::EquiWidth, 8, 128, 1)
            .unwrap();
        cat.drop_histogram("nums", "k").unwrap();
        let t = cat.table("nums").unwrap();
        let k = &t.stats.unwrap().columns["k"];
        assert!(k.histogram.is_none());
        assert!(k.min.is_some());
    }

    #[test]
    fn column_bounds() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 50);
        assert!(cat.column_bounds("nums", "k").is_none());
        cat.analyze(&st, "nums", HistogramKind::MaxDiff, 8, 64, 1)
            .unwrap();
        let (lo, hi) = cat.column_bounds("nums", "k").unwrap();
        assert_eq!(lo, Value::Int(0));
        assert_eq!(hi, Value::Int(49));
    }

    #[test]
    fn register_materialized_keeps_schema_and_stats() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 10);
        let base = cat.table("nums").unwrap();
        // A temp table reusing the base's file with pre-computed stats,
        // as the re-optimizer does when it materializes a cut.
        let stats = TableStats {
            rows: 10,
            pages: 1,
            avg_row_bytes: 16.0,
            columns: HashMap::new(),
        };
        cat.register_materialized("__mq_tmp_1", base.file, base.schema.clone(), stats)
            .unwrap();
        let tmp = cat.table("__mq_tmp_1").unwrap();
        assert_eq!(tmp.file, base.file);
        // Qualified names are preserved, not re-qualified with the temp name.
        assert_eq!(tmp.schema.index_of("nums.k").unwrap(), 0);
        assert_eq!(tmp.stats.as_ref().unwrap().rows, 10);
        assert_eq!(
            tmp.update_activity(),
            0.0,
            "fresh exact stats are not stale"
        );
        // Names collide like regular tables.
        let err = cat
            .register_materialized("__mq_tmp_1", base.file, base.schema, TableStats::default())
            .unwrap_err();
        assert_eq!(err.kind(), "already_exists");
    }

    #[test]
    fn drop_table_removes_entry_but_not_file() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 5);
        let entry = cat.drop_table("nums").unwrap();
        assert!(cat.table("nums").is_err());
        assert!(cat.table_names().is_empty());
        // The heap file is still readable; dropping is a catalog-only op.
        let rows: Vec<_> = st.scan_file(entry.file).unwrap().collect();
        assert_eq!(rows.len(), 5);
        assert!(cat.drop_table("nums").is_err(), "second drop is NotFound");
    }

    #[test]
    fn analyze_resets_staleness_counter() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 100);
        assert_eq!(cat.table("nums").unwrap().update_activity(), 1.0);
        cat.analyze(&st, "nums", HistogramKind::EquiDepth, 8, 128, 1)
            .unwrap();
        for i in 0..25 {
            cat.insert_row(&st, "nums", Row::new(vec![Value::Int(i), Value::Int(0)]))
                .unwrap();
        }
        assert!(cat.table("nums").unwrap().update_activity() > 0.2);
        cat.analyze(&st, "nums", HistogramKind::EquiDepth, 8, 128, 2)
            .unwrap();
        let t = cat.table("nums").unwrap();
        assert_eq!(t.update_activity(), 0.0);
        assert_eq!(t.stats.unwrap().rows, 125, "re-ANALYZE sees the new rows");
    }

    #[test]
    fn analyze_empty_table() {
        let (cat, st) = setup();
        cat.create_table(&st, "empty", vec![("a", DataType::Int)])
            .unwrap();
        cat.analyze(&st, "empty", HistogramKind::MaxDiff, 8, 64, 1)
            .unwrap();
        let s = cat.table("empty").unwrap().stats.unwrap();
        assert_eq!(s.rows, 0);
        assert_eq!(s.avg_row_bytes, 0.0);
        assert!(s.columns["a"].min.is_none());
    }

    #[test]
    fn analyze_records_histogram_kind_and_clustering() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 200); // k inserted in ascending order
        cat.analyze(&st, "nums", HistogramKind::EndBiased, 8, 256, 1)
            .unwrap();
        let s = cat.table("nums").unwrap().stats.unwrap();
        let k = &s.columns["k"];
        assert_eq!(k.histogram_kind, Some(HistogramKind::EndBiased));
        assert!(
            k.clustering > 0.95,
            "ascending inserts are near-perfectly clustered: {}",
            k.clustering
        );
        // v cycles 0..9 repeatedly — 90% of consecutive pairs are
        // nondecreasing, so clustering ≈ |2·0.9−1| = 0.8: still less
        // clustered than the perfectly ascending key.
        assert!(s.columns["v"].clustering < k.clustering);
        assert!((s.columns["v"].clustering - 0.8).abs() < 0.1);
    }

    #[test]
    fn create_index_backfills_existing_rows() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 40);
        cat.create_index(&st, "nums", "k").unwrap();
        let idx = cat.table("nums").unwrap().indexes["k"];
        for probe in [0i64, 17, 39] {
            let hits = st.index_lookup(idx, &Value::Int(probe)).unwrap();
            assert_eq!(hits.len(), 1, "key {probe}");
        }
        assert!(st.index_lookup(idx, &Value::Int(40)).unwrap().is_empty());
        assert!(cat.create_index(&st, "nums", "nope").is_err());
        assert!(cat.create_index(&st, "missing", "k").is_err());
    }

    #[test]
    fn apply_observed_updates_only_observed_columns() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 100);
        cat.analyze(&st, "nums", HistogramKind::MaxDiff, 8, 128, 1)
            .unwrap();
        let before = cat.table("nums").unwrap().stats.unwrap();
        let v_before = before.columns["v"].clone();

        // Observation: table grew to 500 rows, k now spans 0..499.
        let mut columns = HashMap::new();
        columns.insert(
            "k".to_string(),
            mq_stats::ObservedColumn {
                rows: 500,
                null_frac: 0.0,
                min: Some(Value::Int(0)),
                max: Some(Value::Int(499)),
                distinct: 500.0,
                histogram: None,
                clustering: 1.0,
            },
        );
        cat.apply_observed("nums", 500, 9, 16.0, &columns).unwrap();

        let t = cat.table("nums").unwrap();
        let after = t.stats.unwrap();
        assert_eq!(after.rows, 500);
        assert_eq!(after.pages, 9);
        let k = &after.columns["k"];
        assert_eq!(k.max, Some(Value::Int(499)));
        // No histogram in the observation → the stored one survives.
        assert!(k.histogram.is_some());
        assert_eq!(k.histogram_kind, Some(HistogramKind::MaxDiff));
        // Unobserved columns untouched.
        assert_eq!(after.columns["v"].distinct, v_before.distinct);
        // Staleness counter untouched by feedback.
        assert_eq!(t.inserts_since_analyze, 0);
        assert!(cat.apply_observed("missing", 1, 1, 1.0, &columns).is_err());
    }

    #[test]
    fn apply_observed_creates_stats_for_unanalyzed_table() {
        let (cat, st) = setup();
        cat.create_table(&st, "fresh", vec![("a", DataType::Int)])
            .unwrap();
        cat.apply_observed("fresh", 42, 1, 8.0, &HashMap::new())
            .unwrap();
        let s = cat.table("fresh").unwrap().stats.unwrap();
        assert_eq!(s.rows, 42);
        assert_eq!(s.avg_row_bytes, 8.0);
    }

    #[test]
    fn data_version_bumps_on_writes() {
        let (cat, st) = setup();
        load_numbers(&cat, &st, 1);
        let v0 = cat.data_version("nums").unwrap();
        cat.insert_row(&st, "nums", Row::new(vec![Value::Int(9), Value::Int(9)]))
            .unwrap();
        let v1 = cat.data_version("nums").unwrap();
        assert!(v1 > v0, "insert must bump the data version");
        // ANALYZE reads only: no bump.
        cat.analyze(&st, "nums", HistogramKind::MaxDiff, 8, 64, 1)
            .unwrap();
        assert_eq!(cat.data_version("nums").unwrap(), v1);
        assert!(cat.data_version("missing").is_none());
    }

    #[test]
    fn clone_shares_state() {
        let (cat, st) = setup();
        let cat2 = cat.clone();
        load_numbers(&cat, &st, 3);
        // The clone observes tables created through the original handle.
        assert_eq!(cat2.table("nums").unwrap().schema.len(), 2);
        cat2.drop_table("nums").unwrap();
        assert!(cat.table("nums").is_err());
    }
}
