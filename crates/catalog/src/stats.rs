//! Stored statistics structures.

use std::collections::HashMap;

use mq_common::Value;
use mq_stats::{Histogram, HistogramKind};

/// Table-level statistics from ANALYZE (or observed at run time for a
/// materialized intermediate result, where they are *exact*).
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Row count.
    pub rows: u64,
    /// Page count of the backing heap file.
    pub pages: u64,
    /// Average encoded row width in bytes.
    pub avg_row_bytes: f64,
    /// Per-column statistics, keyed by bare column name.
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Stats for one column, if gathered.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }

    /// Estimated total size in bytes.
    pub fn bytes(&self) -> f64 {
        self.rows as f64 * self.avg_row_bytes
    }
}

/// Column-level statistics.
#[derive(Debug, Clone, Default)]
pub struct ColumnStats {
    /// Minimum non-null value.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Estimated distinct values.
    pub distinct: f64,
    /// Fraction of nulls.
    pub null_frac: f64,
    /// Histogram, if one was built.
    pub histogram: Option<Histogram>,
    /// The histogram class (drives §2.5 inaccuracy-potential rules).
    pub histogram_kind: Option<HistogramKind>,
    /// Physical clustering of the column in [0, 1] (1 = table laid out
    /// in this column's order). Drives the index cost model's
    /// sequential-vs-random blend.
    pub clustering: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_product() {
        let s = TableStats {
            rows: 100,
            pages: 10,
            avg_row_bytes: 42.0,
            columns: HashMap::new(),
        };
        assert!((s.bytes() - 4200.0).abs() < 1e-9);
        assert!(s.column("x").is_none());
    }
}
