//! # mq-cache — cross-query sub-plan materialization cache + feedback store
//!
//! The mid-query re-optimization machinery already pays to materialize
//! sub-plan results (the paper's §2.4 temp tables) and to observe true
//! cardinalities (the §2.2 collectors). Both artifacts die with the
//! query that produced them. This crate keeps them alive across
//! queries, per engine:
//!
//! * [`SubPlanCache`] — promoted materializations keyed by a canonical
//!   sub-plan fingerprint (`mq_plan::subplan_fingerprint`). An entry
//!   records the cache table the engine registered in the catalog, its
//!   exact size, the simulated cost its producer paid, and the base
//!   tables (with data versions) it was derived from. The engine probes
//!   the cache bottom-up before executing an optimized plan and splices
//!   `PhysOp::CachedScan` over the largest matching sub-trees.
//!   Entries are **pin-counted**: a probe that splices an entry holds a
//!   [`PinGuard`] for the duration of the query, so eviction and
//!   invalidation can never drop a table a running query is scanning.
//!   Eviction is cost-benefit under a byte budget: lowest
//!   `build_cost_ms × (hits + 1) / bytes` goes first, and entries that
//!   have never been hit are always evicted before entries with hit
//!   history (one-off queries cannot churn hot residents out).
//!   Admission is filtered: a fingerprint evicted twice under budget
//!   pressure is refused re-admission, so a family that keeps losing
//!   the cost-benefit race stops wasting promotion work.
//!   The cache is split into hash-routed **shards** (independent locks,
//!   [`SubPlanCache::with_shards`]) so concurrent probe paths do not
//!   serialize on one mutex; each shard owns an equal slice of the byte
//!   budget and evicts independently.
//! * [`FeedbackStore`] — a map from sub-plan fingerprint to the row
//!   count actually observed for that sub-plan (by a collector
//!   checkpoint or an EXPLAIN ANALYZE actual). The optimizer consults
//!   it before trusting catalog-derived estimates, so the second run of
//!   a query family starts from truth and crosses the controller's
//!   divergence thresholds far less often.
//!
//! The cache stores *metadata only* — the engine owns the catalog and
//! storage, so every mutating call that retires entries returns them to
//! the caller, which drops the backing tables and files. That split
//! keeps this crate dependency-light and makes the crash story simple:
//! a cache entry exists only after its table is durably registered
//! (data-before-metadata, same discipline as the checkpoint manifests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mq_common::{FileId, Schema};
use parking_lot::Mutex;

/// One promoted materialization: everything the engine needs to splice
/// a `CachedScan` (table/file/size/schema), to cost the reuse
/// (`build_cost_ms` saved per hit), and to invalidate on writes
/// (`deps`).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Canonical fingerprint of the producing sub-plan.
    pub fingerprint: u64,
    /// Catalog name of the cache table (`cache_*`).
    pub table: String,
    /// Backing heap file.
    pub file: FileId,
    /// Output schema of the cached sub-plan (splice requires equality).
    pub schema: Schema,
    /// Exact row count.
    pub rows: u64,
    /// Exact page count.
    pub pages: u64,
    /// Approximate bytes charged against the budget.
    pub bytes: u64,
    /// Simulated ms the producing sub-plan cost — the saving per hit.
    pub build_cost_ms: f64,
    /// Base tables the result was derived from, with the data version
    /// observed at promotion. Any version bump invalidates the entry.
    pub deps: Vec<(String, u64)>,
}

/// Cumulative counters, for `\cache stats` and the workload report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Live (non-dead) entries.
    pub entries: usize,
    /// Bytes held by live entries.
    pub bytes: u64,
    /// Current byte budget.
    pub budget_bytes: u64,
    /// Lifetime probe hits.
    pub hits: u64,
    /// Lifetime probe misses (enabled, probed, no usable entry).
    pub misses: u64,
    /// Lifetime promotions accepted.
    pub promotions: u64,
    /// Lifetime evictions (budget pressure only, not invalidation).
    pub evictions: u64,
    /// Lifetime invalidations (data-version bumps + explicit clears).
    pub invalidations: u64,
    /// Lifetime simulated ms saved by hits (Σ build_cost_ms).
    pub saved_ms: f64,
    /// Lifetime bytes not re-materialized thanks to hits.
    pub saved_bytes: u64,
    /// Lifetime promotions refused by the admission filter (fingerprint
    /// already evicted twice under budget pressure).
    pub admission_rejects: u64,
}

impl CacheStats {
    fn absorb(&mut self, other: &CacheStats) {
        self.entries += other.entries;
        self.bytes += other.bytes;
        self.budget_bytes += other.budget_bytes;
        self.hits += other.hits;
        self.misses += other.misses;
        self.promotions += other.promotions;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.saved_ms += other.saved_ms;
        self.saved_bytes += other.saved_bytes;
        self.admission_rejects += other.admission_rejects;
    }
}

struct Slot {
    entry: CacheEntry,
    hits: u64,
    last_hit_seq: u64,
    pins: usize,
    /// Invalidated/evicted while pinned: hidden from lookups, retired
    /// (and handed back for table drop) once the last pin drops.
    dead: bool,
}

impl Slot {
    /// Cost-benefit eviction score: simulated ms of producer work saved
    /// per byte held, weighted by hit recency count. Lowest goes first.
    fn score(&self) -> f64 {
        self.entry.build_cost_ms * (self.hits + 1) as f64 / self.entry.bytes.max(1) as f64
    }
}

struct Inner {
    slots: HashMap<u64, Slot>,
    budget_bytes: u64,
    stats: CacheStats,
    /// Budget-pressure evictions per fingerprint, kept after removal:
    /// the admission filter refuses fingerprints evicted twice.
    evicted_counts: HashMap<u64, u32>,
}

impl Inner {
    fn live_bytes(&self) -> u64 {
        self.slots
            .values()
            .filter(|s| !s.dead)
            .map(|s| s.entry.bytes)
            .sum()
    }

    /// Evict live, unpinned entries until live bytes fit the budget.
    /// Pinned entries are untouchable, so the cache can sit
    /// soft-over-budget while queries hold pins. Victim order: entries
    /// that have never been hit go first (one-off promotions cannot
    /// churn out a hot resident), then lowest score, then least
    /// recently hit.
    fn enforce_budget(&mut self, retired: &mut Vec<CacheEntry>) {
        while self.live_bytes() > self.budget_bytes {
            let victim = self
                .slots
                .values()
                .filter(|s| !s.dead && s.pins == 0)
                .min_by(|a, b| {
                    (a.hits > 0)
                        .cmp(&(b.hits > 0))
                        .then(a.score().total_cmp(&b.score()))
                        .then(a.last_hit_seq.cmp(&b.last_hit_seq))
                })
                .map(|s| s.entry.fingerprint);
            let Some(fp) = victim else { break };
            let slot = self.slots.remove(&fp).expect("victim slot present");
            self.stats.evictions += 1;
            *self.evicted_counts.entry(fp).or_insert(0) += 1;
            retired.push(slot.entry);
        }
    }

    /// Mark a slot dead; if unpinned, remove and return it for drop.
    fn kill(&mut self, fp: u64) -> Option<CacheEntry> {
        let slot = self.slots.get_mut(&fp)?;
        slot.dead = true;
        if slot.pins == 0 {
            return self.slots.remove(&fp).map(|s| s.entry);
        }
        None
    }
}

/// A pinned cache hit: the entry's metadata plus the guard keeping it
/// alive. Hold the guard for as long as the spliced plan may run.
pub struct PinnedEntry {
    /// Snapshot of the entry at lookup time.
    pub entry: CacheEntry,
    /// Keep-alive guard; drop when the query is done with the table.
    pub guard: PinGuard,
}

/// RAII pin on a cache entry. While any pin is held the entry is never
/// evicted and its table is never dropped; invalidation marks it dead
/// and retirement waits for the last pin.
pub struct PinGuard {
    shards: Arc<Vec<Mutex<Inner>>>,
    fingerprint: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let idx = (self.fingerprint % self.shards.len() as u64) as usize;
        let mut inner = self.shards[idx].lock();
        if let Some(slot) = inner.slots.get_mut(&self.fingerprint) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }
}

/// The materialization cache. Cheap to clone (shared interior); one per
/// engine. Internally split into hash-routed shards, each with its own
/// lock and byte-budget slice, so concurrent probes on different
/// fingerprints never contend.
#[derive(Clone)]
pub struct SubPlanCache {
    shards: Arc<Vec<Mutex<Inner>>>,
    seq: Arc<AtomicU64>,
    /// Probe misses carry no fingerprint routing, so they are counted
    /// here at cache level instead of being charged to a shard.
    misses: Arc<AtomicU64>,
}

impl SubPlanCache {
    /// Create a single-shard cache with the given byte budget (the
    /// original single-lock behavior; tests and small tools use this).
    pub fn new(budget_bytes: u64) -> SubPlanCache {
        SubPlanCache::with_shards(budget_bytes, 1)
    }

    /// Create a cache split into `shards` hash-routed shards. The byte
    /// budget is divided evenly (the first `budget % shards` shards get
    /// one extra byte), and each shard evicts independently — so the
    /// largest admissible entry is roughly `budget / shards` bytes.
    pub fn with_shards(budget_bytes: u64, shards: usize) -> SubPlanCache {
        let n = shards.max(1) as u64;
        let base = budget_bytes / n;
        let rem = budget_bytes % n;
        let shards = (0..n)
            .map(|i| {
                let budget = base + u64::from(i < rem);
                Mutex::new(Inner {
                    slots: HashMap::new(),
                    budget_bytes: budget,
                    stats: CacheStats {
                        budget_bytes: budget,
                        ..CacheStats::default()
                    },
                    evicted_counts: HashMap::new(),
                })
            })
            .collect();
        SubPlanCache {
            shards: Arc::new(shards),
            seq: Arc::new(AtomicU64::new(0)),
            misses: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Number of independently-locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, fingerprint: u64) -> &Mutex<Inner> {
        &self.shards[(fingerprint % self.shards.len() as u64) as usize]
    }

    /// Replace the byte budget (e.g. when a runtime leases memory for
    /// the cache). Returns entries evicted to fit the new budget; the
    /// caller must drop their tables.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn set_budget(&self, budget_bytes: u64) -> Vec<CacheEntry> {
        let n = self.shards.len() as u64;
        let base = budget_bytes / n;
        let rem = budget_bytes % n;
        let mut retired = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let budget = base + u64::from((i as u64) < rem);
            let mut inner = shard.lock();
            inner.budget_bytes = budget;
            inner.stats.budget_bytes = budget;
            inner.enforce_budget(&mut retired);
        }
        retired
    }

    /// Admit a promoted materialization. Returns entries retired to
    /// make room (possibly including a previous entry under the same
    /// fingerprint); the caller must drop their tables. An entry larger
    /// than its shard's budget is refused and handed straight back, as
    /// is a fingerprint the admission filter has seen evicted twice.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn insert(&self, entry: CacheEntry) -> Vec<CacheEntry> {
        let mut inner = self.shard(entry.fingerprint).lock();
        let mut retired = Vec::new();
        if entry.bytes > inner.budget_bytes {
            retired.push(entry);
            return retired;
        }
        if inner
            .evicted_counts
            .get(&entry.fingerprint)
            .is_some_and(|&n| n >= 2)
        {
            inner.stats.admission_rejects += 1;
            retired.push(entry);
            return retired;
        }
        if let Some(old) = inner.kill(entry.fingerprint) {
            retired.push(old);
        }
        inner.stats.promotions += 1;
        let fp = entry.fingerprint;
        inner.slots.insert(
            fp,
            Slot {
                entry,
                hits: 0,
                last_hit_seq: self.seq.fetch_add(1, Ordering::Relaxed),
                pins: 1, // pinned by the inserting query until its guard drops
                dead: false,
            },
        );
        inner.enforce_budget(&mut retired);
        // The fresh entry is pinned, so enforce_budget never picks it.
        if let Some(slot) = inner.slots.get_mut(&fp) {
            slot.pins -= 1;
        }
        retired
    }

    /// Probe for a live entry. On hit, bumps the hit counters and
    /// returns the entry pinned; the caller validates `deps` against
    /// the catalog's current data versions *while holding the pin* and
    /// calls [`SubPlanCache::invalidate`] if stale.
    pub fn lookup(&self, fingerprint: u64) -> Option<PinnedEntry> {
        let shard = self.shard(fingerprint);
        let mut inner = shard.lock();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = inner.slots.get_mut(&fingerprint).filter(|s| !s.dead)?;
        slot.pins += 1;
        slot.hits += 1;
        slot.last_hit_seq = seq;
        let entry = slot.entry.clone();
        inner.stats.hits += 1;
        inner.stats.saved_ms += entry.build_cost_ms;
        inner.stats.saved_bytes += entry.bytes;
        Some(PinnedEntry {
            entry,
            guard: PinGuard {
                shards: Arc::clone(&self.shards),
                fingerprint,
            },
        })
    }

    /// Record that an enabled probe found no usable entry. Misses are
    /// unrouted (there is no entry to name a shard), so they live in a
    /// cache-level counter and appear only in the aggregate stats.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Invalidate one entry (stale deps discovered at probe time, or a
    /// promotion superseding it). Returns the entry for table drop if
    /// it was unpinned; a pinned entry is marked dead and comes back
    /// from a later [`SubPlanCache::drain_dead`].
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn invalidate(&self, fingerprint: u64) -> Option<CacheEntry> {
        let mut inner = self.shard(fingerprint).lock();
        let killed = inner.kill(fingerprint);
        if killed.is_some() || inner.slots.get(&fingerprint).is_some_and(|s| s.dead) {
            inner.stats.invalidations += 1;
        }
        killed
    }

    /// Invalidate every entry depending on `table` with a recorded
    /// version older than `current_version`. Returns retired entries
    /// for table drop (pinned ones surface later via `drain_dead`).
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn invalidate_table(&self, table: &str, current_version: u64) -> Vec<CacheEntry> {
        let mut retired = Vec::new();
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            let stale: Vec<u64> = inner
                .slots
                .values()
                .filter(|s| {
                    !s.dead
                        && s.entry
                            .deps
                            .iter()
                            .any(|(t, v)| t == table && *v < current_version)
                })
                .map(|s| s.entry.fingerprint)
                .collect();
            for fp in stale {
                inner.stats.invalidations += 1;
                if let Some(e) = inner.kill(fp) {
                    retired.push(e);
                }
            }
        }
        retired
    }

    /// Remove every entry. Unpinned entries come back for table drop;
    /// pinned ones are marked dead and surface via `drain_dead` once
    /// their queries finish. Also resets the admission filter.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn clear(&self) -> Vec<CacheEntry> {
        let mut retired = Vec::new();
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            let fps: Vec<u64> = inner.slots.keys().copied().collect();
            for fp in fps {
                if inner.slots.get(&fp).is_some_and(|s| !s.dead) {
                    inner.stats.invalidations += 1;
                }
                if let Some(e) = inner.kill(fp) {
                    retired.push(e);
                }
            }
            inner.evicted_counts.clear();
        }
        retired
    }

    /// Collect dead entries whose last pin has dropped, for table drop.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn drain_dead(&self) -> Vec<CacheEntry> {
        let mut retired = Vec::new();
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            let done: Vec<u64> = inner
                .slots
                .values()
                .filter(|s| s.dead && s.pins == 0)
                .map(|s| s.entry.fingerprint)
                .collect();
            retired.extend(
                done.into_iter()
                    .filter_map(|fp| inner.slots.remove(&fp).map(|s| s.entry)),
            );
        }
        retired
    }

    /// Cache table names of all live entries (for the engine's audit:
    /// a `cache_*` catalog table with no live entry is an orphan).
    pub fn live_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let inner = shard.lock();
                inner
                    .slots
                    .values()
                    .filter(|s| !s.dead)
                    .map(|s| s.entry.table.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// Cache table names of *all* entries, dead ones included. The
    /// engine's orphan sweep must not touch a dead-but-pinned entry's
    /// table — a query may still be scanning it.
    pub fn known_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let inner = shard.lock();
                inner
                    .slots
                    .values()
                    .map(|s| s.entry.table.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort();
        out
    }

    /// Snapshot of the counters, aggregated over every shard plus the
    /// cache-level (unrouted) miss count.
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for shard in self.shards.iter() {
            let inner = shard.lock();
            let mut part = inner.stats;
            part.entries = inner.slots.values().filter(|sl| !sl.dead).count();
            part.bytes = inner.live_bytes();
            s.absorb(&part);
        }
        s.misses += self.misses.load(Ordering::Relaxed);
        s
    }
}

/// A [`FeedbackStore`]'s full serializable state, in deterministic
/// (fingerprint-sorted) order — the unit `mq-persist` snapshots.
#[derive(Debug, Clone, Default)]
pub struct FeedbackExport {
    /// Observations, sorted by fingerprint.
    pub entries: Vec<(u64, FeedbackEntry)>,
    /// Lifetime applied total.
    pub applied: u64,
    /// Per-fingerprint application counts, sorted by fingerprint.
    pub applied_by_fp: Vec<(u64, u64)>,
}

/// Observed cardinality for one sub-plan fingerprint.
#[derive(Debug, Clone)]
pub struct FeedbackEntry {
    /// Rows actually produced by the sub-plan.
    pub rows: f64,
    /// Base tables (with data versions) the observation depends on.
    pub deps: Vec<(String, u64)>,
}

/// Per-engine map from sub-plan fingerprint to observed cardinality.
/// Consulted by the optimizer ahead of catalog estimates; populated
/// from collector checkpoints and EXPLAIN ANALYZE actuals.
#[derive(Clone, Default)]
pub struct FeedbackStore {
    inner: Arc<Mutex<HashMap<u64, FeedbackEntry>>>,
    applied: Arc<AtomicU64>,
    /// Lifetime applications per fingerprint — the plan cache's
    /// staleness signal: corrections accumulating against a cached
    /// plan's fingerprints mean its shape was picked from estimates
    /// the store keeps having to fix.
    applied_by_fp: Arc<Mutex<HashMap<u64, u64>>>,
}

impl FeedbackStore {
    /// Create an empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Record (or overwrite: newest observation wins) the observed row
    /// count for a sub-plan.
    pub fn record(&self, fingerprint: u64, rows: f64, deps: Vec<(String, u64)>) {
        self.inner
            .lock()
            .insert(fingerprint, FeedbackEntry { rows, deps });
    }

    /// Look up the observation for a fingerprint, if any.
    pub fn get(&self, fingerprint: u64) -> Option<FeedbackEntry> {
        self.inner.lock().get(&fingerprint).cloned()
    }

    /// Drop observations depending on `table` with a version older than
    /// `current_version` (table written since the observation).
    pub fn invalidate_table(&self, table: &str, current_version: u64) {
        self.inner.lock().retain(|_, e| {
            !e.deps
                .iter()
                .any(|(t, v)| t == table && *v < current_version)
        });
    }

    /// Count one successful application of feedback to an estimate.
    pub fn note_applied(&self) {
        self.applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one application of feedback against a specific sub-plan
    /// fingerprint (bumps the lifetime total too).
    pub fn note_applied_for(&self, fingerprint: u64) {
        self.applied.fetch_add(1, Ordering::Relaxed);
        *self.applied_by_fp.lock().entry(fingerprint).or_insert(0) += 1;
    }

    /// Lifetime number of estimates overridden by feedback.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Sum of per-fingerprint application counts over `fingerprints`
    /// (the plan cache compares this against the count captured when an
    /// entry was admitted).
    pub fn applied_sum(&self, fingerprints: &[u64]) -> u64 {
        let m = self.applied_by_fp.lock();
        fingerprints
            .iter()
            .map(|fp| m.get(fp).copied().unwrap_or(0))
            .sum()
    }

    /// Drop every observation depending on `table`, regardless of
    /// version — used after the table's statistics were rebuilt from
    /// live data, making stored corrections redundant.
    pub fn remove_for_table(&self, table: &str) {
        self.inner
            .lock()
            .retain(|_, e| !e.deps.iter().any(|(t, _)| t == table));
    }

    /// Export the store for a snapshot: observations sorted by
    /// fingerprint, the lifetime applied total, and the per-fingerprint
    /// application counters (sorted too — snapshots must be
    /// byte-deterministic).
    pub fn export(&self) -> FeedbackExport {
        let mut entries: Vec<(u64, FeedbackEntry)> = self
            .inner
            .lock()
            .iter()
            .map(|(fp, e)| (*fp, e.clone()))
            .collect();
        entries.sort_by_key(|(fp, _)| *fp);
        let mut applied_by_fp: Vec<(u64, u64)> = self
            .applied_by_fp
            .lock()
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        applied_by_fp.sort_by_key(|(fp, _)| *fp);
        FeedbackExport {
            entries,
            applied: self.applied.load(Ordering::Relaxed),
            applied_by_fp,
        }
    }

    /// Rebuild the store from an export, replacing current contents.
    /// Restoring the applied counters exactly keeps the plan cache's
    /// staleness arithmetic (`applied_sum - applied_at`) meaningful
    /// across a restart.
    pub fn restore(&self, export: FeedbackExport) {
        *self.inner.lock() = export.entries.into_iter().collect();
        self.applied.store(export.applied, Ordering::Relaxed);
        *self.applied_by_fp.lock() = export.applied_by_fp.into_iter().collect();
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Forget everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field};

    fn entry(fp: u64, bytes: u64, cost: f64, deps: Vec<(&str, u64)>) -> CacheEntry {
        CacheEntry {
            fingerprint: fp,
            table: format!("cache_{fp:x}"),
            file: FileId(fp as u32),
            schema: Schema::new(vec![Field::qualified("t", "a", DataType::Int)]).unwrap(),
            rows: bytes / 8,
            pages: bytes / 4096 + 1,
            bytes,
            build_cost_ms: cost,
            deps: deps.into_iter().map(|(t, v)| (t.to_string(), v)).collect(),
        }
    }

    #[test]
    fn insert_lookup_and_stats() {
        let cache = SubPlanCache::new(1 << 20);
        assert!(cache.insert(entry(1, 100, 5.0, vec![("t", 1)])).is_empty());
        let hit = cache.lookup(1).expect("hit");
        assert_eq!(hit.entry.table, "cache_1");
        assert!(cache.lookup(2).is_none());
        cache.record_miss();
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.misses, s.promotions), (1, 1, 1, 1));
        assert_eq!(s.bytes, 100);
        assert!((s.saved_ms - 5.0).abs() < 1e-9);
        assert_eq!(s.saved_bytes, 100);
    }

    #[test]
    fn eviction_prefers_lowest_benefit_per_byte() {
        let cache = SubPlanCache::new(300);
        // High benefit density (10.0/100) vs low (0.1/100).
        assert!(cache.insert(entry(1, 100, 10.0, vec![])).is_empty());
        assert!(cache.insert(entry(2, 100, 0.1, vec![])).is_empty());
        assert!(cache.insert(entry(3, 100, 5.0, vec![])).is_empty());
        // A fourth 100-byte entry forces one eviction: entry 2.
        let retired = cache.insert(entry(4, 100, 5.0, vec![]));
        assert_eq!(retired.len(), 1, "{retired:?}");
        assert_eq!(retired[0].fingerprint, 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn hits_protect_entries_from_eviction() {
        let cache = SubPlanCache::new(200);
        assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
        assert!(cache.insert(entry(2, 100, 1.0, vec![])).is_empty());
        // Three hits on entry 1 quadruple its score.
        for _ in 0..3 {
            drop(cache.lookup(1));
        }
        let retired = cache.insert(entry(3, 100, 1.0, vec![]));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].fingerprint, 2);
    }

    #[test]
    fn pinned_entries_survive_eviction_and_clear() {
        let cache = SubPlanCache::new(100);
        assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
        let pin = cache.lookup(1).expect("hit");
        // Budget pressure cannot evict the pinned entry (soft overflow).
        let retired = cache.insert(entry(2, 100, 100.0, vec![]));
        assert!(retired.is_empty(), "{retired:?}");
        assert!(cache.stats().bytes > 100);
        // Clear marks the pinned entry dead but does not hand it back.
        let cleared = cache.clear();
        assert_eq!(cleared.len(), 1); // entry 2 only
        assert_eq!(cleared[0].fingerprint, 2);
        assert!(cache.lookup(1).is_none(), "dead entry must not hit");
        assert!(cache.drain_dead().is_empty(), "still pinned");
        drop(pin);
        let dead = cache.drain_dead();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].fingerprint, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn invalidate_table_respects_versions() {
        let cache = SubPlanCache::new(1 << 20);
        assert!(cache.insert(entry(1, 10, 1.0, vec![("a", 3)])).is_empty());
        assert!(cache.insert(entry(2, 10, 1.0, vec![("b", 3)])).is_empty());
        // Version 3 is current: nothing stale.
        assert!(cache.invalidate_table("a", 3).is_empty());
        // Version bump retires only the dependent entry.
        let retired = cache.invalidate_table("a", 4);
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].fingerprint, 1);
        assert!(cache.lookup(1).is_none());
        assert!(cache.lookup(2).is_some());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let cache = SubPlanCache::new(50);
        let retired = cache.insert(entry(1, 100, 1.0, vec![]));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].fingerprint, 1);
        assert!(cache.lookup(1).is_none());
    }

    #[test]
    fn shrinking_budget_evicts() {
        let cache = SubPlanCache::new(300);
        for fp in 1..=3 {
            assert!(cache.insert(entry(fp, 100, fp as f64, vec![])).is_empty());
        }
        let retired = cache.set_budget(150);
        assert_eq!(retired.len(), 2, "{retired:?}");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().budget_bytes, 150);
    }

    #[test]
    fn live_tables_lists_non_dead() {
        let cache = SubPlanCache::new(1 << 20);
        assert!(cache.insert(entry(2, 10, 1.0, vec![])).is_empty());
        assert!(cache.insert(entry(1, 10, 1.0, vec![])).is_empty());
        assert_eq!(cache.live_tables(), vec!["cache_1", "cache_2"]);
        let _ = cache.invalidate(1);
        assert_eq!(cache.live_tables(), vec!["cache_2"]);
    }

    #[test]
    fn sharded_cache_routes_and_aggregates() {
        let cache = SubPlanCache::with_shards(400, 4);
        assert_eq!(cache.shard_count(), 4);
        // Fingerprints 1..=4 land on four different shards.
        for fp in 1..=4 {
            assert!(cache.insert(entry(fp, 50, 1.0, vec![("t", 1)])).is_empty());
        }
        for fp in 1..=4 {
            assert!(cache.lookup(fp).is_some(), "fp {fp} lost in routing");
        }
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.promotions), (4, 4, 4));
        assert_eq!(s.bytes, 200);
        assert_eq!(s.budget_bytes, 400, "shard budgets must sum to total");
        // Cross-shard operations see every entry.
        assert_eq!(cache.live_tables().len(), 4);
        let retired = cache.invalidate_table("t", 2);
        assert_eq!(retired.len(), 4);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn twice_evicted_fingerprint_is_refused_admission() {
        let cache = SubPlanCache::new(100);
        // Evict fp 1 twice via budget pressure from higher-value entries.
        for round in 0..2 {
            assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
            let retired = cache.insert(entry(10 + round, 100, 50.0, vec![]));
            assert_eq!(retired.len(), 1, "round {round}: {retired:?}");
            assert_eq!(retired[0].fingerprint, 1);
            let _ = cache.invalidate(10 + round); // make room for the next round
        }
        // Third promotion of fp 1 is refused outright.
        let refused = cache.insert(entry(1, 100, 1.0, vec![]));
        assert_eq!(refused.len(), 1);
        assert_eq!(refused[0].fingerprint, 1);
        assert!(cache.lookup(1).is_none());
        assert_eq!(cache.stats().admission_rejects, 1);
        // clear() resets the filter: fp 1 is admissible again.
        assert!(cache.clear().is_empty());
        assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
        assert!(cache.lookup(1).is_some());
    }

    #[test]
    fn churn_workload_keeps_hot_entry_resident() {
        let cache = SubPlanCache::new(200);
        // A modest-value entry that keeps getting hit...
        assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
        drop(cache.lookup(1));
        // ...survives a churn of one-off promotions with far better
        // cost-benefit scores: never-hit entries are evicted first.
        for fp in 100..110 {
            let retired = cache.insert(entry(fp, 100, 1000.0, vec![]));
            for e in &retired {
                assert_ne!(e.fingerprint, 1, "hot entry churned out by fp {fp}");
            }
            drop(cache.lookup(1)); // stays hot throughout
        }
        assert!(cache.lookup(1).is_some(), "hot entry must remain resident");
    }

    #[test]
    fn feedback_store_roundtrip_and_invalidation() {
        let fb = FeedbackStore::new();
        assert!(fb.is_empty());
        fb.record(7, 123.0, vec![("a".to_string(), 2)]);
        fb.record(8, 456.0, vec![("b".to_string(), 2)]);
        assert_eq!(fb.get(7).unwrap().rows, 123.0);
        // Newest observation wins.
        fb.record(7, 321.0, vec![("a".to_string(), 2)]);
        assert_eq!(fb.get(7).unwrap().rows, 321.0);
        fb.invalidate_table("a", 3);
        assert!(fb.get(7).is_none());
        assert!(fb.get(8).is_some());
        fb.note_applied();
        assert_eq!(fb.applied(), 1);
        fb.clear();
        assert_eq!(fb.len(), 0);
    }

    #[test]
    fn feedback_per_fingerprint_counters_and_table_removal() {
        let fb = FeedbackStore::new();
        fb.note_applied_for(7);
        fb.note_applied_for(7);
        fb.note_applied_for(9);
        assert_eq!(fb.applied(), 3, "per-fp notes bump the lifetime total");
        assert_eq!(fb.applied_sum(&[7]), 2);
        assert_eq!(fb.applied_sum(&[7, 9]), 3);
        assert_eq!(fb.applied_sum(&[8]), 0);

        fb.record(1, 10.0, vec![("a".to_string(), 1), ("b".to_string(), 1)]);
        fb.record(2, 20.0, vec![("b".to_string(), 5)]);
        // remove_for_table ignores versions: any dependence drops it.
        fb.remove_for_table("b");
        assert!(fb.get(1).is_none());
        assert!(fb.get(2).is_none());
    }
}
