//! # mq-cache — cross-query sub-plan materialization cache + feedback store
//!
//! The mid-query re-optimization machinery already pays to materialize
//! sub-plan results (the paper's §2.4 temp tables) and to observe true
//! cardinalities (the §2.2 collectors). Both artifacts die with the
//! query that produced them. This crate keeps them alive across
//! queries, per engine:
//!
//! * [`SubPlanCache`] — promoted materializations keyed by a canonical
//!   sub-plan fingerprint (`mq_plan::subplan_fingerprint`). An entry
//!   records the cache table the engine registered in the catalog, its
//!   exact size, the simulated cost its producer paid, and the base
//!   tables (with data versions) it was derived from. The engine probes
//!   the cache bottom-up before executing an optimized plan and splices
//!   `PhysOp::CachedScan` over the largest matching sub-trees.
//!   Entries are **pin-counted**: a probe that splices an entry holds a
//!   [`PinGuard`] for the duration of the query, so eviction and
//!   invalidation can never drop a table a running query is scanning.
//!   Eviction is cost-benefit under a byte budget: lowest
//!   `build_cost_ms × (hits + 1) / bytes` goes first.
//! * [`FeedbackStore`] — a map from sub-plan fingerprint to the row
//!   count actually observed for that sub-plan (by a collector
//!   checkpoint or an EXPLAIN ANALYZE actual). The optimizer consults
//!   it before trusting catalog-derived estimates, so the second run of
//!   a query family starts from truth and crosses the controller's
//!   divergence thresholds far less often.
//!
//! The cache stores *metadata only* — the engine owns the catalog and
//! storage, so every mutating call that retires entries returns them to
//! the caller, which drops the backing tables and files. That split
//! keeps this crate dependency-light and makes the crash story simple:
//! a cache entry exists only after its table is durably registered
//! (data-before-metadata, same discipline as the checkpoint manifests).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mq_common::{FileId, Schema};
use parking_lot::Mutex;

/// One promoted materialization: everything the engine needs to splice
/// a `CachedScan` (table/file/size/schema), to cost the reuse
/// (`build_cost_ms` saved per hit), and to invalidate on writes
/// (`deps`).
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Canonical fingerprint of the producing sub-plan.
    pub fingerprint: u64,
    /// Catalog name of the cache table (`cache_*`).
    pub table: String,
    /// Backing heap file.
    pub file: FileId,
    /// Output schema of the cached sub-plan (splice requires equality).
    pub schema: Schema,
    /// Exact row count.
    pub rows: u64,
    /// Exact page count.
    pub pages: u64,
    /// Approximate bytes charged against the budget.
    pub bytes: u64,
    /// Simulated ms the producing sub-plan cost — the saving per hit.
    pub build_cost_ms: f64,
    /// Base tables the result was derived from, with the data version
    /// observed at promotion. Any version bump invalidates the entry.
    pub deps: Vec<(String, u64)>,
}

/// Cumulative counters, for `\cache stats` and the workload report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Live (non-dead) entries.
    pub entries: usize,
    /// Bytes held by live entries.
    pub bytes: u64,
    /// Current byte budget.
    pub budget_bytes: u64,
    /// Lifetime probe hits.
    pub hits: u64,
    /// Lifetime probe misses (enabled, probed, no usable entry).
    pub misses: u64,
    /// Lifetime promotions accepted.
    pub promotions: u64,
    /// Lifetime evictions (budget pressure only, not invalidation).
    pub evictions: u64,
    /// Lifetime invalidations (data-version bumps + explicit clears).
    pub invalidations: u64,
    /// Lifetime simulated ms saved by hits (Σ build_cost_ms).
    pub saved_ms: f64,
    /// Lifetime bytes not re-materialized thanks to hits.
    pub saved_bytes: u64,
}

struct Slot {
    entry: CacheEntry,
    hits: u64,
    last_hit_seq: u64,
    pins: usize,
    /// Invalidated/evicted while pinned: hidden from lookups, retired
    /// (and handed back for table drop) once the last pin drops.
    dead: bool,
}

impl Slot {
    /// Cost-benefit eviction score: simulated ms of producer work saved
    /// per byte held, weighted by hit recency count. Lowest goes first.
    fn score(&self) -> f64 {
        self.entry.build_cost_ms * (self.hits + 1) as f64 / self.entry.bytes.max(1) as f64
    }
}

struct Inner {
    slots: HashMap<u64, Slot>,
    budget_bytes: u64,
    stats: CacheStats,
}

impl Inner {
    fn live_bytes(&self) -> u64 {
        self.slots
            .values()
            .filter(|s| !s.dead)
            .map(|s| s.entry.bytes)
            .sum()
    }

    /// Evict live, unpinned entries (lowest score first) until live
    /// bytes fit the budget. Pinned entries are untouchable, so the
    /// cache can sit soft-over-budget while queries hold pins.
    fn enforce_budget(&mut self, retired: &mut Vec<CacheEntry>) {
        while self.live_bytes() > self.budget_bytes {
            let victim = self
                .slots
                .values()
                .filter(|s| !s.dead && s.pins == 0)
                .min_by(|a, b| {
                    a.score()
                        .total_cmp(&b.score())
                        .then(a.last_hit_seq.cmp(&b.last_hit_seq))
                })
                .map(|s| s.entry.fingerprint);
            let Some(fp) = victim else { break };
            let slot = self.slots.remove(&fp).expect("victim slot present");
            self.stats.evictions += 1;
            retired.push(slot.entry);
        }
    }

    /// Mark a slot dead; if unpinned, remove and return it for drop.
    fn kill(&mut self, fp: u64) -> Option<CacheEntry> {
        let slot = self.slots.get_mut(&fp)?;
        slot.dead = true;
        if slot.pins == 0 {
            return self.slots.remove(&fp).map(|s| s.entry);
        }
        None
    }
}

/// A pinned cache hit: the entry's metadata plus the guard keeping it
/// alive. Hold the guard for as long as the spliced plan may run.
pub struct PinnedEntry {
    /// Snapshot of the entry at lookup time.
    pub entry: CacheEntry,
    /// Keep-alive guard; drop when the query is done with the table.
    pub guard: PinGuard,
}

/// RAII pin on a cache entry. While any pin is held the entry is never
/// evicted and its table is never dropped; invalidation marks it dead
/// and retirement waits for the last pin.
pub struct PinGuard {
    inner: Arc<Mutex<Inner>>,
    fingerprint: u64,
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.slots.get_mut(&self.fingerprint) {
            slot.pins = slot.pins.saturating_sub(1);
        }
    }
}

/// The materialization cache. Cheap to clone (shared interior); one per
/// engine.
#[derive(Clone)]
pub struct SubPlanCache {
    inner: Arc<Mutex<Inner>>,
    seq: Arc<AtomicU64>,
}

impl SubPlanCache {
    /// Create a cache with the given byte budget.
    pub fn new(budget_bytes: u64) -> SubPlanCache {
        SubPlanCache {
            inner: Arc::new(Mutex::new(Inner {
                slots: HashMap::new(),
                budget_bytes,
                stats: CacheStats {
                    budget_bytes,
                    ..CacheStats::default()
                },
            })),
            seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replace the byte budget (e.g. when a runtime leases memory for
    /// the cache). Returns entries evicted to fit the new budget; the
    /// caller must drop their tables.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn set_budget(&self, budget_bytes: u64) -> Vec<CacheEntry> {
        let mut inner = self.inner.lock();
        inner.budget_bytes = budget_bytes;
        inner.stats.budget_bytes = budget_bytes;
        let mut retired = Vec::new();
        inner.enforce_budget(&mut retired);
        retired
    }

    /// Admit a promoted materialization. Returns entries retired to
    /// make room (possibly including a previous entry under the same
    /// fingerprint); the caller must drop their tables. An entry larger
    /// than the whole budget is refused and handed straight back.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn insert(&self, entry: CacheEntry) -> Vec<CacheEntry> {
        let mut inner = self.inner.lock();
        let mut retired = Vec::new();
        if entry.bytes > inner.budget_bytes {
            retired.push(entry);
            return retired;
        }
        if let Some(old) = inner.kill(entry.fingerprint) {
            retired.push(old);
        }
        inner.stats.promotions += 1;
        let fp = entry.fingerprint;
        inner.slots.insert(
            fp,
            Slot {
                entry,
                hits: 0,
                last_hit_seq: self.seq.fetch_add(1, Ordering::Relaxed),
                pins: 1, // pinned by the inserting query until its guard drops
                dead: false,
            },
        );
        inner.enforce_budget(&mut retired);
        // The fresh entry is pinned, so enforce_budget never picks it.
        if let Some(slot) = inner.slots.get_mut(&fp) {
            slot.pins -= 1;
        }
        retired
    }

    /// Probe for a live entry. On hit, bumps the hit counters and
    /// returns the entry pinned; the caller validates `deps` against
    /// the catalog's current data versions *while holding the pin* and
    /// calls [`SubPlanCache::invalidate`] if stale.
    pub fn lookup(&self, fingerprint: u64) -> Option<PinnedEntry> {
        let mut inner = self.inner.lock();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = inner.slots.get_mut(&fingerprint).filter(|s| !s.dead)?;
        slot.pins += 1;
        slot.hits += 1;
        slot.last_hit_seq = seq;
        let entry = slot.entry.clone();
        inner.stats.hits += 1;
        inner.stats.saved_ms += entry.build_cost_ms;
        inner.stats.saved_bytes += entry.bytes;
        Some(PinnedEntry {
            entry,
            guard: PinGuard {
                inner: Arc::clone(&self.inner),
                fingerprint,
            },
        })
    }

    /// Record that an enabled probe found no usable entry.
    pub fn record_miss(&self) {
        self.inner.lock().stats.misses += 1;
    }

    /// Invalidate one entry (stale deps discovered at probe time, or a
    /// promotion superseding it). Returns the entry for table drop if
    /// it was unpinned; a pinned entry is marked dead and comes back
    /// from a later [`SubPlanCache::drain_dead`].
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn invalidate(&self, fingerprint: u64) -> Option<CacheEntry> {
        let mut inner = self.inner.lock();
        let killed = inner.kill(fingerprint);
        if killed.is_some() || inner.slots.get(&fingerprint).is_some_and(|s| s.dead) {
            inner.stats.invalidations += 1;
        }
        killed
    }

    /// Invalidate every entry depending on `table` with a recorded
    /// version older than `current_version`. Returns retired entries
    /// for table drop (pinned ones surface later via `drain_dead`).
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn invalidate_table(&self, table: &str, current_version: u64) -> Vec<CacheEntry> {
        let mut inner = self.inner.lock();
        let stale: Vec<u64> = inner
            .slots
            .values()
            .filter(|s| {
                !s.dead
                    && s.entry
                        .deps
                        .iter()
                        .any(|(t, v)| t == table && *v < current_version)
            })
            .map(|s| s.entry.fingerprint)
            .collect();
        let mut retired = Vec::new();
        for fp in stale {
            inner.stats.invalidations += 1;
            if let Some(e) = inner.kill(fp) {
                retired.push(e);
            }
        }
        retired
    }

    /// Remove every entry. Unpinned entries come back for table drop;
    /// pinned ones are marked dead and surface via `drain_dead` once
    /// their queries finish.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn clear(&self) -> Vec<CacheEntry> {
        let mut inner = self.inner.lock();
        let fps: Vec<u64> = inner.slots.keys().copied().collect();
        let mut retired = Vec::new();
        for fp in fps {
            if inner.slots.get(&fp).is_some_and(|s| !s.dead) {
                inner.stats.invalidations += 1;
            }
            if let Some(e) = inner.kill(fp) {
                retired.push(e);
            }
        }
        retired
    }

    /// Collect dead entries whose last pin has dropped, for table drop.
    #[must_use = "retired entries' tables must be dropped by the caller"]
    pub fn drain_dead(&self) -> Vec<CacheEntry> {
        let mut inner = self.inner.lock();
        let done: Vec<u64> = inner
            .slots
            .values()
            .filter(|s| s.dead && s.pins == 0)
            .map(|s| s.entry.fingerprint)
            .collect();
        done.into_iter()
            .filter_map(|fp| inner.slots.remove(&fp).map(|s| s.entry))
            .collect()
    }

    /// Cache table names of all live entries (for the engine's audit:
    /// a `cache_*` catalog table with no live entry is an orphan).
    pub fn live_tables(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut out: Vec<String> = inner
            .slots
            .values()
            .filter(|s| !s.dead)
            .map(|s| s.entry.table.clone())
            .collect();
        out.sort();
        out
    }

    /// Cache table names of *all* entries, dead ones included. The
    /// engine's orphan sweep must not touch a dead-but-pinned entry's
    /// table — a query may still be scanning it.
    pub fn known_tables(&self) -> Vec<String> {
        let inner = self.inner.lock();
        let mut out: Vec<String> = inner
            .slots
            .values()
            .map(|s| s.entry.table.clone())
            .collect();
        out.sort();
        out
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock();
        let mut s = inner.stats;
        s.entries = inner.slots.values().filter(|sl| !sl.dead).count();
        s.bytes = inner.live_bytes();
        s
    }
}

/// Observed cardinality for one sub-plan fingerprint.
#[derive(Debug, Clone)]
pub struct FeedbackEntry {
    /// Rows actually produced by the sub-plan.
    pub rows: f64,
    /// Base tables (with data versions) the observation depends on.
    pub deps: Vec<(String, u64)>,
}

/// Per-engine map from sub-plan fingerprint to observed cardinality.
/// Consulted by the optimizer ahead of catalog estimates; populated
/// from collector checkpoints and EXPLAIN ANALYZE actuals.
#[derive(Clone, Default)]
pub struct FeedbackStore {
    inner: Arc<Mutex<HashMap<u64, FeedbackEntry>>>,
    applied: Arc<AtomicU64>,
}

impl FeedbackStore {
    /// Create an empty store.
    pub fn new() -> FeedbackStore {
        FeedbackStore::default()
    }

    /// Record (or overwrite: newest observation wins) the observed row
    /// count for a sub-plan.
    pub fn record(&self, fingerprint: u64, rows: f64, deps: Vec<(String, u64)>) {
        self.inner
            .lock()
            .insert(fingerprint, FeedbackEntry { rows, deps });
    }

    /// Look up the observation for a fingerprint, if any.
    pub fn get(&self, fingerprint: u64) -> Option<FeedbackEntry> {
        self.inner.lock().get(&fingerprint).cloned()
    }

    /// Drop observations depending on `table` with a version older than
    /// `current_version` (table written since the observation).
    pub fn invalidate_table(&self, table: &str, current_version: u64) {
        self.inner.lock().retain(|_, e| {
            !e.deps
                .iter()
                .any(|(t, v)| t == table && *v < current_version)
        });
    }

    /// Count one successful application of feedback to an estimate.
    pub fn note_applied(&self) {
        self.applied.fetch_add(1, Ordering::Relaxed);
    }

    /// Lifetime number of estimates overridden by feedback.
    pub fn applied(&self) -> u64 {
        self.applied.load(Ordering::Relaxed)
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Forget everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field};

    fn entry(fp: u64, bytes: u64, cost: f64, deps: Vec<(&str, u64)>) -> CacheEntry {
        CacheEntry {
            fingerprint: fp,
            table: format!("cache_{fp:x}"),
            file: FileId(fp as u32),
            schema: Schema::new(vec![Field::qualified("t", "a", DataType::Int)]).unwrap(),
            rows: bytes / 8,
            pages: bytes / 4096 + 1,
            bytes,
            build_cost_ms: cost,
            deps: deps.into_iter().map(|(t, v)| (t.to_string(), v)).collect(),
        }
    }

    #[test]
    fn insert_lookup_and_stats() {
        let cache = SubPlanCache::new(1 << 20);
        assert!(cache.insert(entry(1, 100, 5.0, vec![("t", 1)])).is_empty());
        let hit = cache.lookup(1).expect("hit");
        assert_eq!(hit.entry.table, "cache_1");
        assert!(cache.lookup(2).is_none());
        cache.record_miss();
        let s = cache.stats();
        assert_eq!((s.entries, s.hits, s.misses, s.promotions), (1, 1, 1, 1));
        assert_eq!(s.bytes, 100);
        assert!((s.saved_ms - 5.0).abs() < 1e-9);
        assert_eq!(s.saved_bytes, 100);
    }

    #[test]
    fn eviction_prefers_lowest_benefit_per_byte() {
        let cache = SubPlanCache::new(300);
        // High benefit density (10.0/100) vs low (0.1/100).
        assert!(cache.insert(entry(1, 100, 10.0, vec![])).is_empty());
        assert!(cache.insert(entry(2, 100, 0.1, vec![])).is_empty());
        assert!(cache.insert(entry(3, 100, 5.0, vec![])).is_empty());
        // A fourth 100-byte entry forces one eviction: entry 2.
        let retired = cache.insert(entry(4, 100, 5.0, vec![]));
        assert_eq!(retired.len(), 1, "{retired:?}");
        assert_eq!(retired[0].fingerprint, 2);
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn hits_protect_entries_from_eviction() {
        let cache = SubPlanCache::new(200);
        assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
        assert!(cache.insert(entry(2, 100, 1.0, vec![])).is_empty());
        // Three hits on entry 1 quadruple its score.
        for _ in 0..3 {
            drop(cache.lookup(1));
        }
        let retired = cache.insert(entry(3, 100, 1.0, vec![]));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].fingerprint, 2);
    }

    #[test]
    fn pinned_entries_survive_eviction_and_clear() {
        let cache = SubPlanCache::new(100);
        assert!(cache.insert(entry(1, 100, 1.0, vec![])).is_empty());
        let pin = cache.lookup(1).expect("hit");
        // Budget pressure cannot evict the pinned entry (soft overflow).
        let retired = cache.insert(entry(2, 100, 100.0, vec![]));
        assert!(retired.is_empty(), "{retired:?}");
        assert!(cache.stats().bytes > 100);
        // Clear marks the pinned entry dead but does not hand it back.
        let cleared = cache.clear();
        assert_eq!(cleared.len(), 1); // entry 2 only
        assert_eq!(cleared[0].fingerprint, 2);
        assert!(cache.lookup(1).is_none(), "dead entry must not hit");
        assert!(cache.drain_dead().is_empty(), "still pinned");
        drop(pin);
        let dead = cache.drain_dead();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].fingerprint, 1);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn invalidate_table_respects_versions() {
        let cache = SubPlanCache::new(1 << 20);
        assert!(cache.insert(entry(1, 10, 1.0, vec![("a", 3)])).is_empty());
        assert!(cache.insert(entry(2, 10, 1.0, vec![("b", 3)])).is_empty());
        // Version 3 is current: nothing stale.
        assert!(cache.invalidate_table("a", 3).is_empty());
        // Version bump retires only the dependent entry.
        let retired = cache.invalidate_table("a", 4);
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].fingerprint, 1);
        assert!(cache.lookup(1).is_none());
        assert!(cache.lookup(2).is_some());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let cache = SubPlanCache::new(50);
        let retired = cache.insert(entry(1, 100, 1.0, vec![]));
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].fingerprint, 1);
        assert!(cache.lookup(1).is_none());
    }

    #[test]
    fn shrinking_budget_evicts() {
        let cache = SubPlanCache::new(300);
        for fp in 1..=3 {
            assert!(cache.insert(entry(fp, 100, fp as f64, vec![])).is_empty());
        }
        let retired = cache.set_budget(150);
        assert_eq!(retired.len(), 2, "{retired:?}");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().budget_bytes, 150);
    }

    #[test]
    fn live_tables_lists_non_dead() {
        let cache = SubPlanCache::new(1 << 20);
        assert!(cache.insert(entry(2, 10, 1.0, vec![])).is_empty());
        assert!(cache.insert(entry(1, 10, 1.0, vec![])).is_empty());
        assert_eq!(cache.live_tables(), vec!["cache_1", "cache_2"]);
        let _ = cache.invalidate(1);
        assert_eq!(cache.live_tables(), vec!["cache_2"]);
    }

    #[test]
    fn feedback_store_roundtrip_and_invalidation() {
        let fb = FeedbackStore::new();
        assert!(fb.is_empty());
        fb.record(7, 123.0, vec![("a".to_string(), 2)]);
        fb.record(8, 456.0, vec![("b".to_string(), 2)]);
        assert_eq!(fb.get(7).unwrap().rows, 123.0);
        // Newest observation wins.
        fb.record(7, 321.0, vec![("a".to_string(), 2)]);
        assert_eq!(fb.get(7).unwrap().rows, 321.0);
        fb.invalidate_table("a", 3);
        assert!(fb.get(7).is_none());
        assert!(fb.get(8).is_some());
        fb.note_applied();
        assert_eq!(fb.applied(), 1);
        fb.clear();
        assert_eq!(fb.len(), 0);
    }
}
