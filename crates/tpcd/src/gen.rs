//! The data generator: a deterministic, scale-factor-driven `dbgen`
//! equivalent with optional Zipfian skew.
//!
//! Faithful bits that matter for the experiments:
//!
//! * **date correlations** — `l_shipdate = o_orderdate + U[1,121]`,
//!   `l_receiptdate = l_shipdate + U[1,30]`, and `l_returnflag`
//!   derived from the receipt date, exactly TPC-D's rules. Predicates
//!   over correlated date pairs are a natural estimation-error source
//!   (§2.4 footnote 2);
//! * **skew** — with `zipf_z = Some(z)`, every non-key attribute draws
//!   from a scrambled generalized-Zipfian distribution over its domain
//!   (§3.2, Figure 12);
//! * **staleness** — ANALYZE can run part-way through the load.

use std::collections::HashMap;

use mq_catalog::Catalog;
use mq_common::value::civil_to_days;
use mq_common::{DataType, DetRng, Result, Row, Value};
use mq_stats::Zipf;
use mq_storage::Storage;

use crate::TpcdConfig;

/// Row counts per table after loading.
#[derive(Debug, Clone)]
pub struct TpcdStats {
    /// Rows loaded per table.
    pub rows: HashMap<String, u64>,
}

/// TPC-D region names.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// TPC-D nation (name, region index) pairs.
pub const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// Market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];

/// Part type words (simplified `p_type`).
pub const PART_TYPES: [&str; 6] = [
    "ECONOMY ANODIZED STEEL",
    "STANDARD BRUSHED BRASS",
    "PROMO BURNISHED COPPER",
    "SMALL PLATED TIN",
    "MEDIUM POLISHED NICKEL",
    "LARGE ANODIZED STEEL",
];

/// First day of the order-date domain.
pub fn start_date() -> i64 {
    civil_to_days(1992, 1, 1)
}

/// Last day of the order-date domain.
pub fn end_date() -> i64 {
    civil_to_days(1998, 8, 2)
}

/// TPC-D "current date" used for return flags.
pub fn current_date() -> i64 {
    civil_to_days(1995, 6, 17)
}

/// Attribute value source: uniform or scrambled-Zipfian per column.
struct Draw {
    rng: DetRng,
    zipf_z: Option<f64>,
    zipfs: HashMap<(u64, usize), Zipf>,
}

impl Draw {
    fn new(seed: u64, zipf_z: Option<f64>) -> Draw {
        Draw {
            rng: DetRng::new(seed),
            zipf_z,
            zipfs: HashMap::new(),
        }
    }

    /// Key-ish uniform draw (never skewed).
    fn key(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_i64(lo, hi)
    }

    /// Non-key attribute draw over `[lo, hi]`, skewed when configured.
    fn attr(&mut self, salt: u64, lo: i64, hi: i64) -> i64 {
        let domain = (hi - lo + 1).max(1) as usize;
        match self.zipf_z {
            None => self.rng.gen_i64(lo, hi),
            Some(z) => {
                let zipf = self
                    .zipfs
                    .entry((salt, domain))
                    .or_insert_with(|| Zipf::new(domain, z).scrambled(salt ^ 0xA5A5));
                lo + zipf.sample(&mut self.rng) as i64
            }
        }
    }

    fn attr_f(&mut self, salt: u64, lo: f64, hi: f64, steps: i64) -> f64 {
        let i = self.attr(salt, 0, steps - 1);
        lo + (hi - lo) * i as f64 / (steps - 1).max(1) as f64
    }
}

fn scaled(base: u64, scale: f64, min: u64) -> u64 {
    ((base as f64 * scale) as u64).max(min)
}

/// Generate and load everything.
pub fn generate(cfg: &TpcdConfig, catalog: &Catalog, storage: &Storage) -> Result<TpcdStats> {
    let mut draw = Draw::new(cfg.seed, cfg.zipf_z);

    let n_supplier = scaled(10_000, cfg.scale, 10);
    let n_customer = scaled(150_000, cfg.scale, 30);
    let n_part = scaled(200_000, cfg.scale, 20);
    let n_orders = scaled(1_500_000, cfg.scale, 150);

    create_tables(catalog, storage)?;

    // Build full row vectors first (the two-phase load needs to split
    // them), then insert.
    let mut tables: Vec<(&str, Vec<Row>)> = Vec::new();

    tables.push((
        "region",
        REGIONS
            .iter()
            .enumerate()
            .map(|(i, r)| Row::new(vec![Value::Int(i as i64), Value::str(*r)]))
            .collect(),
    ));
    let nation_rows: Vec<Row> = NATIONS
        .iter()
        .enumerate()
        .map(|(i, (name, region))| {
            Row::new(vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::Int(*region),
            ])
        })
        .collect();
    tables.push(("nation", nation_rows.clone()));
    tables.push(("nation2", nation_rows));

    tables.push((
        "supplier",
        (0..n_supplier)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Int(draw.attr(11, 0, 24)),
                    Value::Float(draw.attr_f(12, -999.99, 9999.99, 2000)),
                ])
            })
            .collect(),
    ));

    tables.push((
        "customer",
        (0..n_customer)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::Int(draw.attr(21, 0, 24)),
                    Value::str(SEGMENTS[draw.attr(22, 0, 4) as usize]),
                    Value::Float(draw.attr_f(23, -999.99, 9999.99, 2000)),
                ])
            })
            .collect(),
    ));

    tables.push((
        "part",
        (0..n_part)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i as i64),
                    Value::str(PART_TYPES[draw.attr(31, 0, 5) as usize]),
                    Value::Int(draw.attr(32, 1, 50)),
                    Value::Float(900.0 + (i % 1000) as f64),
                ])
            })
            .collect(),
    ));

    let mut partsupp = Vec::with_capacity(n_part as usize * 4);
    for p in 0..n_part {
        for _ in 0..4 {
            partsupp.push(Row::new(vec![
                Value::Int(p as i64),
                Value::Int(draw.key(0, n_supplier as i64 - 1)),
                Value::Float(draw.attr_f(41, 1.0, 1000.0, 1000)),
            ]));
        }
    }
    tables.push(("partsupp", partsupp));

    // Orders and lineitems, with the TPC-D date correlations.
    let mut orders = Vec::with_capacity(n_orders as usize);
    let mut lineitems = Vec::new();
    let (d0, d1) = (start_date(), end_date());
    let today = current_date();
    for o in 0..n_orders {
        let custkey = draw.key(0, n_customer as i64 - 1);
        let orderdate = draw.attr(51, d0, d1);
        let nlines = draw.rng.gen_i64(1, 7);
        let mut total = 0.0;
        for _ in 0..nlines {
            let quantity = draw.attr(61, 1, 50);
            let price = quantity as f64 * draw.attr_f(62, 900.0, 1100.0, 200);
            let discount = draw.attr(63, 0, 10) as f64 / 100.0;
            let tax = draw.attr(64, 0, 8) as f64 / 100.0;
            let shipdate = orderdate + draw.attr(65, 1, 121);
            let commitdate = orderdate + draw.attr(66, 30, 90);
            let receiptdate = shipdate + draw.attr(67, 1, 30);
            let returnflag = if receiptdate <= today {
                if draw.rng.gen_bool(0.5) {
                    "R"
                } else {
                    "A"
                }
            } else {
                "N"
            };
            let linestatus = if shipdate > today { "O" } else { "F" };
            total += price * (1.0 - discount);
            lineitems.push(Row::new(vec![
                Value::Int(o as i64),
                Value::Int(draw.key(0, n_part as i64 - 1)),
                Value::Int(draw.key(0, n_supplier as i64 - 1)),
                Value::Int(quantity),
                Value::Float(price),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(returnflag),
                Value::str(linestatus),
                Value::Date(shipdate),
                Value::Date(commitdate),
                Value::Date(receiptdate),
            ]));
        }
        let status = if orderdate + 100 < today { "F" } else { "O" };
        orders.push(Row::new(vec![
            Value::Int(o as i64),
            Value::Int(custkey),
            Value::str(status),
            Value::Float(total),
            Value::Date(orderdate),
            Value::Int(draw.attr(52, 0, 1)),
        ]));
    }
    tables.push(("orders", orders));
    tables.push(("lineitem", lineitems));

    // Two-phase load: fraction → ANALYZE → remainder (stale catalog).
    let frac = cfg.analyze_after_fraction.clamp(0.0, 1.0);
    let mut stats = TpcdStats {
        rows: HashMap::new(),
    };
    let mut remainders: Vec<(&str, Vec<Row>)> = Vec::new();
    for (name, mut rows) in tables {
        stats.rows.insert(name.to_string(), rows.len() as u64);
        let cut = (rows.len() as f64 * frac).round() as usize;
        let rest = rows.split_off(cut.min(rows.len()));
        for row in rows {
            catalog.insert_row(storage, name, row)?;
        }
        remainders.push((name, rest));
    }
    for name in TABLE_NAMES {
        catalog.analyze(
            storage,
            name,
            cfg.histogram,
            cfg.buckets,
            cfg.reservoir,
            cfg.seed ^ 0xBEEF,
        )?;
    }
    for (name, rest) in remainders {
        for row in rest {
            catalog.insert_row(storage, name, row)?;
        }
    }

    if cfg.indexes {
        for (table, column) in [
            ("orders", "o_orderkey"),
            ("customer", "c_custkey"),
            ("supplier", "s_suppkey"),
            ("part", "p_partkey"),
            ("nation", "n_nationkey"),
            ("nation2", "n_nationkey"),
            ("region", "r_regionkey"),
            ("lineitem", "l_orderkey"),
        ] {
            catalog.create_index(storage, table, column)?;
        }
    }
    Ok(stats)
}

/// All table names, in load order.
pub const TABLE_NAMES: [&str; 9] = [
    "region", "nation", "nation2", "supplier", "customer", "part", "partsupp", "orders", "lineitem",
];

fn create_tables(catalog: &Catalog, storage: &Storage) -> Result<()> {
    use DataType::*;
    catalog.create_table(
        storage,
        "region",
        vec![("r_regionkey", Int), ("r_name", Str)],
    )?;
    for name in ["nation", "nation2"] {
        catalog.create_table(
            storage,
            name,
            vec![("n_nationkey", Int), ("n_name", Str), ("n_regionkey", Int)],
        )?;
    }
    catalog.create_table(
        storage,
        "supplier",
        vec![
            ("s_suppkey", Int),
            ("s_nationkey", Int),
            ("s_acctbal", Float),
        ],
    )?;
    catalog.create_table(
        storage,
        "customer",
        vec![
            ("c_custkey", Int),
            ("c_nationkey", Int),
            ("c_mktsegment", Str),
            ("c_acctbal", Float),
        ],
    )?;
    catalog.create_table(
        storage,
        "part",
        vec![
            ("p_partkey", Int),
            ("p_type", Str),
            ("p_size", Int),
            ("p_retailprice", Float),
        ],
    )?;
    catalog.create_table(
        storage,
        "partsupp",
        vec![
            ("ps_partkey", Int),
            ("ps_suppkey", Int),
            ("ps_supplycost", Float),
        ],
    )?;
    catalog.create_table(
        storage,
        "orders",
        vec![
            ("o_orderkey", Int),
            ("o_custkey", Int),
            ("o_orderstatus", Str),
            ("o_totalprice", Float),
            ("o_orderdate", Date),
            ("o_shippriority", Int),
        ],
    )?;
    catalog.create_table(
        storage,
        "lineitem",
        vec![
            ("l_orderkey", Int),
            ("l_partkey", Int),
            ("l_suppkey", Int),
            ("l_quantity", Int),
            ("l_extendedprice", Float),
            ("l_discount", Float),
            ("l_tax", Float),
            ("l_returnflag", Str),
            ("l_linestatus", Str),
            ("l_shipdate", Date),
            ("l_commitdate", Date),
            ("l_receiptdate", Date),
        ],
    )?;
    Ok(())
}

#[cfg(test)]
mod correlation_tests {
    use super::*;
    use mq_common::{EngineConfig, SimClock};
    use mq_storage::Storage;

    /// TPC-D's date derivations must hold: ship after order, receipt
    /// after ship, return flags consistent with the receipt date.
    #[test]
    fn lineitem_date_correlations() {
        let ecfg = EngineConfig::default();
        let storage = Storage::new(&ecfg, SimClock::new());
        let catalog = mq_catalog::Catalog::new();
        let cfg = crate::TpcdConfig {
            scale: 0.001,
            indexes: false,
            ..crate::TpcdConfig::default()
        };
        generate(&cfg, &catalog, &storage).unwrap();

        let li = catalog.table("lineitem").unwrap();
        let orders = catalog.table("orders").unwrap();
        let oidx = li.schema.index_of("l_orderkey").unwrap();
        let ship = li.schema.index_of("l_shipdate").unwrap();
        let receipt = li.schema.index_of("l_receiptdate").unwrap();
        let flag = li.schema.index_of("l_returnflag").unwrap();

        // Order dates by key.
        let mut orderdates = std::collections::HashMap::new();
        for item in storage.scan_file(orders.file).unwrap() {
            let (_, row) = item.unwrap();
            orderdates.insert(
                row.get(0).as_i64().unwrap(),
                row.get(orders.schema.index_of("o_orderdate").unwrap())
                    .as_i64()
                    .unwrap(),
            );
        }
        let today = current_date();
        let mut checked = 0;
        for item in storage.scan_file(li.file).unwrap() {
            let (_, row) = item.unwrap();
            let od = orderdates[&row.get(oidx).as_i64().unwrap()];
            let sd = row.get(ship).as_i64().unwrap();
            let rd = row.get(receipt).as_i64().unwrap();
            assert!(sd > od, "shipdate must follow orderdate");
            assert!(rd > sd, "receiptdate must follow shipdate");
            let f = row.get(flag).as_str().unwrap();
            if rd > today {
                assert_eq!(f, "N", "future receipts are not returned");
            } else {
                assert!(f == "R" || f == "A");
            }
            checked += 1;
        }
        assert!(checked > 1000);
    }

    #[test]
    fn keys_reference_existing_rows() {
        let ecfg = EngineConfig::default();
        let storage = Storage::new(&ecfg, SimClock::new());
        let catalog = mq_catalog::Catalog::new();
        let cfg = crate::TpcdConfig {
            scale: 0.001,
            indexes: false,
            ..crate::TpcdConfig::default()
        };
        let stats = generate(&cfg, &catalog, &storage).unwrap();
        let orders = catalog.table("orders").unwrap();
        let n_cust = stats.rows["customer"] as i64;
        let ck = orders.schema.index_of("o_custkey").unwrap();
        for item in storage.scan_file(orders.file).unwrap() {
            let (_, row) = item.unwrap();
            let c = row.get(ck).as_i64().unwrap();
            assert!((0..n_cust).contains(&c), "dangling custkey {c}");
        }
    }
}
