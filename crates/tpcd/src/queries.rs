//! The seven benchmark queries (§3.2), with the paper's simplification
//! of aggregate expressions (footnote 4: `SUM(L_EXTENDEDPRICE *
//! (1 - L_DISCOUNT))` → `SUM(L_EXTENDEDPRICE)`).
//!
//! Complexity classes per the paper: Q1 and Q6 are *simple* (≤ 1
//! join), Q3 and Q10 *medium* (2–3 joins), Q5, Q7 and Q8 *complex*
//! (≥ 4 joins).

use mq_common::value::date;
use mq_expr::{and, cmp, col, eq, lit, CmpOp, Expr};
use mq_plan::{AggExpr, AggFunc, LogicalPlan};

/// The paper's query classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Zero or one join — never re-optimized.
    Simple,
    /// Two or three joins — memory re-allocation territory.
    Medium,
    /// Four or more joins — the primary target.
    Complex,
}

/// Name → class, as the paper assigns them.
pub fn class_of(name: &str) -> QueryClass {
    match name {
        "Q1" | "Q6" => QueryClass::Simple,
        "Q3" | "Q10" => QueryClass::Medium,
        _ => QueryClass::Complex,
    }
}

fn sum(e: Expr, name: &str) -> AggExpr {
    AggExpr {
        func: AggFunc::Sum,
        arg: Some(e),
        name: name.to_string(),
    }
}

fn avg(e: Expr, name: &str) -> AggExpr {
    AggExpr {
        func: AggFunc::Avg,
        arg: Some(e),
        name: name.to_string(),
    }
}

fn count(name: &str) -> AggExpr {
    AggExpr {
        func: AggFunc::Count,
        arg: None,
        name: name.to_string(),
    }
}

/// Q1 — pricing summary report (simple: no joins).
pub fn q1() -> LogicalPlan {
    LogicalPlan::scan_filtered(
        "lineitem",
        cmp(
            CmpOp::Le,
            col("l_shipdate"),
            Expr::Literal(date(1998, 9, 2)),
        ),
    )
    .aggregate(
        vec!["l_returnflag", "l_linestatus"],
        vec![
            sum(col("l_quantity"), "sum_qty"),
            sum(col("l_extendedprice"), "sum_base_price"),
            avg(col("l_quantity"), "avg_qty"),
            avg(col("l_extendedprice"), "avg_price"),
            avg(col("l_discount"), "avg_disc"),
            count("count_order"),
        ],
    )
    .sort(vec![("l_returnflag", true), ("l_linestatus", true)])
}

/// Q3 — shipping priority (medium: 2 joins).
pub fn q3() -> LogicalPlan {
    LogicalPlan::scan_filtered("customer", eq(col("c_mktsegment"), lit("BUILDING")))
        .join(
            LogicalPlan::scan_filtered(
                "orders",
                cmp(
                    CmpOp::Lt,
                    col("o_orderdate"),
                    Expr::Literal(date(1995, 3, 15)),
                ),
            ),
            vec![("c_custkey", "o_custkey")],
        )
        .join(
            LogicalPlan::scan_filtered(
                "lineitem",
                cmp(
                    CmpOp::Gt,
                    col("l_shipdate"),
                    Expr::Literal(date(1995, 3, 15)),
                ),
            ),
            vec![("o_orderkey", "l_orderkey")],
        )
        .aggregate(
            vec!["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![sum(col("l_extendedprice"), "revenue")],
        )
        .sort(vec![("revenue", false), ("o_orderdate", true)])
        .limit(10)
}

/// Q5 — local supplier volume (complex: 5 joins, customer and supplier
/// constrained to the same nation).
pub fn q5() -> LogicalPlan {
    LogicalPlan::scan("customer")
        .join(
            LogicalPlan::scan_filtered(
                "orders",
                and(vec![
                    cmp(
                        CmpOp::Ge,
                        col("o_orderdate"),
                        Expr::Literal(date(1994, 1, 1)),
                    ),
                    cmp(
                        CmpOp::Lt,
                        col("o_orderdate"),
                        Expr::Literal(date(1995, 1, 1)),
                    ),
                ]),
            ),
            vec![("c_custkey", "o_custkey")],
        )
        .join(
            LogicalPlan::scan("lineitem"),
            vec![("o_orderkey", "l_orderkey")],
        )
        .join(
            LogicalPlan::scan("supplier"),
            vec![("l_suppkey", "s_suppkey"), ("c_nationkey", "s_nationkey")],
        )
        .join(
            LogicalPlan::scan("nation"),
            vec![("s_nationkey", "n_nationkey")],
        )
        .join(
            LogicalPlan::scan_filtered("region", eq(col("r_name"), lit("ASIA"))),
            vec![("n_regionkey", "r_regionkey")],
        )
        .aggregate(vec!["n_name"], vec![sum(col("l_extendedprice"), "revenue")])
        .sort(vec![("revenue", false)])
}

/// Q6 — forecasting revenue change (simple: no joins).
pub fn q6() -> LogicalPlan {
    LogicalPlan::scan_filtered(
        "lineitem",
        and(vec![
            cmp(
                CmpOp::Ge,
                col("l_shipdate"),
                Expr::Literal(date(1994, 1, 1)),
            ),
            cmp(
                CmpOp::Lt,
                col("l_shipdate"),
                Expr::Literal(date(1995, 1, 1)),
            ),
            cmp(CmpOp::Ge, col("l_discount"), lit(0.05)),
            cmp(CmpOp::Le, col("l_discount"), lit(0.07)),
            cmp(CmpOp::Lt, col("l_quantity"), lit(24i64)),
        ]),
    )
    .aggregate(vec![], vec![sum(col("l_extendedprice"), "revenue")])
}

/// Q7 — volume shipping (complex: 5 joins, nation self-join via the
/// materialized `nation2` alias).
pub fn q7() -> LogicalPlan {
    LogicalPlan::scan("supplier")
        .join(
            LogicalPlan::scan_filtered(
                "lineitem",
                and(vec![
                    cmp(
                        CmpOp::Ge,
                        col("l_shipdate"),
                        Expr::Literal(date(1995, 1, 1)),
                    ),
                    cmp(
                        CmpOp::Le,
                        col("l_shipdate"),
                        Expr::Literal(date(1996, 12, 31)),
                    ),
                ]),
            ),
            vec![("s_suppkey", "l_suppkey")],
        )
        .join(
            LogicalPlan::scan("orders"),
            vec![("l_orderkey", "o_orderkey")],
        )
        .join(
            LogicalPlan::scan("customer"),
            vec![("o_custkey", "c_custkey")],
        )
        .join(
            LogicalPlan::scan("nation"),
            vec![("s_nationkey", "nation.n_nationkey")],
        )
        .join(
            LogicalPlan::scan("nation2"),
            vec![("c_nationkey", "nation2.n_nationkey")],
        )
        .filter(Expr::Or(vec![
            and(vec![
                eq(col("nation.n_name"), lit("FRANCE")),
                eq(col("nation2.n_name"), lit("GERMANY")),
            ]),
            and(vec![
                eq(col("nation.n_name"), lit("GERMANY")),
                eq(col("nation2.n_name"), lit("FRANCE")),
            ]),
        ]))
        .aggregate(
            vec!["nation.n_name", "nation2.n_name"],
            vec![sum(col("l_extendedprice"), "revenue")],
        )
}

/// Q8 — national market share (complex: 7 joins).
pub fn q8() -> LogicalPlan {
    LogicalPlan::scan_filtered("part", eq(col("p_type"), lit("ECONOMY ANODIZED STEEL")))
        .join(
            LogicalPlan::scan("lineitem"),
            vec![("p_partkey", "l_partkey")],
        )
        .join(
            LogicalPlan::scan("supplier"),
            vec![("l_suppkey", "s_suppkey")],
        )
        .join(
            LogicalPlan::scan_filtered(
                "orders",
                and(vec![
                    cmp(
                        CmpOp::Ge,
                        col("o_orderdate"),
                        Expr::Literal(date(1995, 1, 1)),
                    ),
                    cmp(
                        CmpOp::Le,
                        col("o_orderdate"),
                        Expr::Literal(date(1996, 12, 31)),
                    ),
                ]),
            ),
            vec![("l_orderkey", "o_orderkey")],
        )
        .join(
            LogicalPlan::scan("customer"),
            vec![("o_custkey", "c_custkey")],
        )
        .join(
            LogicalPlan::scan("nation"),
            vec![("c_nationkey", "nation.n_nationkey")],
        )
        .join(
            LogicalPlan::scan_filtered("region", eq(col("r_name"), lit("AMERICA"))),
            vec![("nation.n_regionkey", "r_regionkey")],
        )
        .join(
            LogicalPlan::scan("nation2"),
            vec![("s_nationkey", "nation2.n_nationkey")],
        )
        .aggregate(
            vec!["nation2.n_name"],
            vec![sum(col("l_extendedprice"), "volume"), count("n_items")],
        )
        .sort(vec![("volume", false)])
}

/// Q10 — returned item reporting (medium: 3 joins).
pub fn q10() -> LogicalPlan {
    LogicalPlan::scan("customer")
        .join(
            LogicalPlan::scan_filtered(
                "orders",
                and(vec![
                    cmp(
                        CmpOp::Ge,
                        col("o_orderdate"),
                        Expr::Literal(date(1993, 10, 1)),
                    ),
                    cmp(
                        CmpOp::Lt,
                        col("o_orderdate"),
                        Expr::Literal(date(1994, 1, 1)),
                    ),
                ]),
            ),
            vec![("c_custkey", "o_custkey")],
        )
        .join(
            LogicalPlan::scan_filtered("lineitem", eq(col("l_returnflag"), lit("R"))),
            vec![("o_orderkey", "l_orderkey")],
        )
        .join(
            LogicalPlan::scan("nation"),
            vec![("c_nationkey", "n_nationkey")],
        )
        .aggregate(
            vec!["c_custkey", "n_name"],
            vec![sum(col("l_extendedprice"), "revenue")],
        )
        .sort(vec![("revenue", false)])
        .limit(20)
}

/// All seven queries, in the paper's reporting order.
pub fn all() -> Vec<(&'static str, LogicalPlan)> {
    vec![
        ("Q1", q1()),
        ("Q3", q3()),
        ("Q5", q5()),
        ("Q6", q6()),
        ("Q7", q7()),
        ("Q8", q8()),
        ("Q10", q10()),
    ]
}

/// Q1 as SQL text.
pub fn q1_sql() -> &'static str {
    "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
            sum(l_extendedprice) AS sum_base_price, avg(l_quantity) AS avg_qty, \
            avg(l_extendedprice) AS avg_price, avg(l_discount) AS avg_disc, \
            count(*) AS count_order \
     FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' \
     GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
}

/// Q5 as SQL text.
pub fn q5_sql() -> &'static str {
    "SELECT n_name, sum(l_extendedprice) AS revenue \
     FROM customer, orders, lineitem, supplier, nation, region \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey \
       AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
       AND r_name = 'ASIA' \
       AND o_orderdate >= DATE '1994-01-01' AND o_orderdate < DATE '1995-01-01' \
     GROUP BY n_name ORDER BY revenue DESC"
}

/// Q10 as SQL text.
pub fn q10_sql() -> &'static str {
    "SELECT c_custkey, n_name, sum(l_extendedprice) AS revenue \
     FROM customer, orders, lineitem, nation \
     WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey \
       AND c_nationkey = n_nationkey AND l_returnflag = 'R' \
       AND o_orderdate >= DATE '1993-10-01' AND o_orderdate < DATE '1994-01-01' \
     GROUP BY c_custkey, n_name ORDER BY revenue DESC LIMIT 20"
}

/// Q6 as SQL text (for the SQL-frontend example).
pub fn q6_sql() -> &'static str {
    "SELECT sum(l_extendedprice) AS revenue \
     FROM lineitem \
     WHERE l_shipdate >= DATE '1994-01-01' AND l_shipdate < DATE '1995-01-01' \
       AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"
}

/// Q3 as SQL text (for the SQL-frontend example).
pub fn q3_sql() -> &'static str {
    "SELECT l_orderkey, o_orderdate, o_shippriority, sum(l_extendedprice) AS revenue \
     FROM customer, orders, lineitem \
     WHERE c_mktsegment = 'BUILDING' \
       AND c_custkey = o_custkey AND o_orderkey = l_orderkey \
       AND o_orderdate < DATE '1995-03-15' AND l_shipdate > DATE '1995-03-15' \
     GROUP BY l_orderkey, o_orderdate, o_shippriority \
     ORDER BY revenue DESC, o_orderdate LIMIT 10"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_match_paper() {
        assert_eq!(class_of("Q1"), QueryClass::Simple);
        assert_eq!(class_of("Q6"), QueryClass::Simple);
        assert_eq!(class_of("Q3"), QueryClass::Medium);
        assert_eq!(class_of("Q10"), QueryClass::Medium);
        for q in ["Q5", "Q7", "Q8"] {
            assert_eq!(class_of(q), QueryClass::Complex);
        }
    }

    #[test]
    fn join_counts() {
        assert_eq!(q1().join_count(), 0);
        assert_eq!(q6().join_count(), 0);
        assert_eq!(q3().join_count(), 2);
        assert_eq!(q10().join_count(), 3);
        assert_eq!(q5().join_count(), 5);
        assert_eq!(q7().join_count(), 5);
        assert_eq!(q8().join_count(), 7);
    }

    #[test]
    fn sql_variants_parse() {
        for sql in [q1_sql(), q3_sql(), q5_sql(), q6_sql(), q10_sql()] {
            assert!(mq_sql::parse_query(sql).is_ok(), "{sql}");
        }
    }
}
