//! # mq-tpcd — the TPC-D workload substrate
//!
//! The paper evaluates Dynamic Re-Optimization on a TPC-D database
//! (scale factor 3) with queries Q1, Q3, Q5, Q6, Q7, Q8 and Q10
//! (§3.2). This crate reproduces that workload at laptop scale:
//!
//! * [`gen`] — a from-scratch `dbgen` equivalent: all eight tables,
//!   deterministic, with TPC-D's native correlations (ship/commit/
//!   receipt dates derived from the order date) and an optional
//!   generalized-Zipfian skew on every non-key attribute (the paper's
//!   Figure 12 experiment, z ∈ {0.3, 0.6});
//! * [`queries`] — the seven benchmark queries as logical plans (with
//!   the paper's footnote-4 simplification: aggregates over plain
//!   columns instead of arithmetic expressions);
//! * [`TpcdConfig`]/[`load`] — loading with a configurable
//!   *staleness* point: ANALYZE can run after only a fraction of the
//!   data is loaded, recreating the stale-catalog estimation errors
//!   Paradise suffered.
//!
//! Q7 and Q8 join `nation` twice; since the engine identifies
//! relations by table name, the loader registers an identical
//! `nation2` table (a "self-join alias" materialized at load time).

pub mod gen;
pub mod queries;

use mq_catalog::Catalog;
use mq_common::Result;
use mq_stats::HistogramKind;
use mq_storage::Storage;

pub use gen::TpcdStats;

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct TpcdConfig {
    /// TPC-D scale factor (1.0 = 6M lineitem rows; the experiments use
    /// 0.002–0.02).
    pub scale: f64,
    /// Zipfian skew for non-key attributes (`None` = uniform; the paper
    /// uses 0.3 and 0.6 for Figure 12).
    pub zipf_z: Option<f64>,
    /// Generator seed.
    pub seed: u64,
    /// Fraction of each table loaded *before* ANALYZE runs; the
    /// remainder loads afterwards, leaving the catalog stale (1.0 =
    /// fresh statistics).
    pub analyze_after_fraction: f64,
    /// Histogram class stored in the catalog (drives the SCIA's
    /// inaccuracy-potential levels).
    pub histogram: HistogramKind,
    /// Histogram bucket count for ANALYZE.
    pub buckets: usize,
    /// Reservoir size for ANALYZE.
    pub reservoir: usize,
    /// Build primary-key B+-tree indexes (enables indexed joins).
    pub indexes: bool,
}

impl Default for TpcdConfig {
    fn default() -> Self {
        TpcdConfig {
            scale: 0.005,
            zipf_z: None,
            seed: 19_980_601,
            analyze_after_fraction: 1.0,
            histogram: HistogramKind::MaxDiff,
            buckets: 32,
            reservoir: 1024,
            indexes: true,
        }
    }
}

/// Create, populate, index and analyze the TPC-D tables.
pub fn load(cfg: &TpcdConfig, catalog: &Catalog, storage: &Storage) -> Result<TpcdStats> {
    gen::generate(cfg, catalog, storage)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{EngineConfig, SimClock};

    #[test]
    fn tiny_load_has_expected_shape() {
        let ecfg = EngineConfig::default();
        let storage = Storage::new(&ecfg, SimClock::new());
        let catalog = Catalog::new();
        let cfg = TpcdConfig {
            scale: 0.001,
            ..TpcdConfig::default()
        };
        let stats = load(&cfg, &catalog, &storage).unwrap();
        assert_eq!(stats.rows["region"], 5);
        assert_eq!(stats.rows["nation"], 25);
        assert_eq!(stats.rows["nation2"], 25);
        assert!(stats.rows["lineitem"] > 3000, "{:?}", stats.rows);
        assert!(stats.rows["orders"] >= 1000);
        // Orders reference existing customers; lineitems reference
        // existing orders.
        let orders = catalog.table("orders").unwrap();
        assert!(orders.stats.is_some(), "orders must be analyzed");
        // Index presence.
        assert!(catalog
            .table("orders")
            .unwrap()
            .indexes
            .contains_key("o_orderkey"));
        assert!(catalog
            .table("customer")
            .unwrap()
            .indexes
            .contains_key("c_custkey"));
    }

    #[test]
    fn staleness_splits_load() {
        let ecfg = EngineConfig::default();
        let storage = Storage::new(&ecfg, SimClock::new());
        let catalog = Catalog::new();
        let cfg = TpcdConfig {
            scale: 0.001,
            analyze_after_fraction: 0.5,
            indexes: false,
            ..TpcdConfig::default()
        };
        load(&cfg, &catalog, &storage).unwrap();
        let li = catalog.table("lineitem").unwrap();
        let analyzed_rows = li.stats.as_ref().unwrap().rows;
        let live = storage.file_rows(li.file).unwrap();
        assert!(
            live > analyzed_rows + analyzed_rows / 2,
            "live {live} vs analyzed {analyzed_rows}"
        );
        assert!(li.update_activity() > 0.5);
    }

    #[test]
    fn skewed_load_differs_from_uniform() {
        let ecfg = EngineConfig::default();
        let storage = Storage::new(&ecfg, SimClock::new());
        let catalog = Catalog::new();
        let cfg = TpcdConfig {
            scale: 0.001,
            zipf_z: Some(0.6),
            indexes: false,
            ..TpcdConfig::default()
        };
        load(&cfg, &catalog, &storage).unwrap();
        // Under z = 0.6, quantity values concentrate: the most common
        // value should dominate.
        let li = catalog.table("lineitem").unwrap();
        let file = li.file;
        let qidx = li.schema.index_of("l_quantity").unwrap();
        let mut counts = std::collections::HashMap::new();
        for item in storage.scan_file(file).unwrap() {
            let (_, row) = item.unwrap();
            *counts
                .entry(row.get(qidx).as_i64().unwrap_or(0))
                .or_insert(0usize) += 1;
        }
        let total: usize = counts.values().sum();
        let max = counts.values().copied().max().unwrap();
        assert!(
            max as f64 / total as f64 > 0.05,
            "max frequency {max}/{total} not skewed"
        );
    }

    #[test]
    fn queries_plan_against_loaded_catalog() {
        let ecfg = EngineConfig::default();
        let storage = Storage::new(&ecfg, SimClock::new());
        let catalog = Catalog::new();
        let cfg = TpcdConfig {
            scale: 0.001,
            ..TpcdConfig::default()
        };
        load(&cfg, &catalog, &storage).unwrap();
        for (name, q) in queries::all() {
            let schema = q.schema(&catalog);
            assert!(schema.is_ok(), "{name}: {:?}", schema.err());
        }
        // Complexity classes (§3.2): Q1/Q6 simple, Q3/Q10 medium,
        // Q5/Q7/Q8 complex.
        assert_eq!(queries::q1().join_count(), 0);
        assert_eq!(queries::q6().join_count(), 0);
        assert_eq!(queries::q3().join_count(), 2);
        assert_eq!(queries::q10().join_count(), 3);
        assert!(queries::q5().join_count() >= 4);
        assert!(queries::q7().join_count() >= 4);
        assert!(queries::q8().join_count() >= 4);
    }
}
