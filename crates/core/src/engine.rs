//! The top-level query engine with Dynamic Re-Optimization.
//!
//! [`Engine::run`] is the whole §2.6 summary in code: optimize →
//! statistics-collectors insertion → memory allocation → execute with
//! the controller attached; when the controller unwinds with a plan
//! switch, materialize the cut subtree (reusing its surviving build
//! artifacts), register the temp table with the *exact* statistics
//! observed while writing it, re-optimize the remainder, and continue —
//! "this process continues until the query completes execution" (§3.1).

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use mq_cache::{CacheEntry, CacheStats, FeedbackStore, PinGuard, SubPlanCache};
use mq_catalog::{Catalog, TableStats};
use mq_common::{
    CancelToken, CostSnapshot, EngineConfig, FaultInjector, MqError, Result, Row, Schema, SimClock,
};
use mq_exec::{materialize, run_to_vec, ExecContext, OpActuals};
use mq_memory::MemoryManager;
use mq_obs::{ObsEvent, SegmentOutcome};
use mq_optimizer::{
    apply_feedback, recost, CardFeedback, GraphFeedbackHit, OptCalibration, Optimizer,
};
use mq_par::{parallelize, run_partitioned, ParReport, ParSpec};
use mq_plan::{base_tables, subplan_fingerprint, LogicalPlan, NodeId, PhysOp, PhysPlan, ScanSpec};
use mq_plancache::{normalize, CachedPlan, Freshness, NormalizedQuery, PlanCache, PlanCacheStats};
use mq_stats::HistogramKind;
use mq_storage::Storage;
use parking_lot::Mutex;

use crate::controller::ReoptController;
use crate::manifest::{plan_hash, CheckpointRecord, ManifestStore, QueryManifest};
use crate::scia::insert_collectors;
use crate::ReoptMode;

/// Everything a finished query reports.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Result rows.
    pub rows: Vec<Row>,
    /// Physical-cost delta for this query alone.
    pub cost: CostSnapshot,
    /// Simulated execution time in milliseconds.
    pub time_ms: f64,
    /// The mode the query ran under.
    pub mode: ReoptMode,
    /// Accepted plan switches.
    pub plan_switches: u32,
    /// Segments re-run after a transient fault (injected or real).
    pub segment_retries: u32,
    /// Memory re-allocations that changed at least one grant.
    pub memory_reallocs: u32,
    /// Statistics-collector reports received.
    pub collector_reports: u32,
    /// Human-readable controller event log.
    pub events: Vec<String>,
    /// The plan that produced the final rows (last attempt).
    pub final_plan: PhysPlan,
    /// Per-operator observed execution counters of the final attempt,
    /// keyed by node id of [`QueryOutcome::final_plan`]. Row counts are
    /// always collected; cpu/io deltas only when an observability sink
    /// was active during the run.
    pub actuals: HashMap<NodeId, OpActuals>,
    /// Partitioned-execution report (exchange routing, skew verdicts,
    /// parallel time saved) when the job ran with a [`ParSpec`];
    /// `None` for serial execution.
    pub par: Option<ParReport>,
}

impl QueryOutcome {
    /// Render a post-execution report in the spirit of
    /// `EXPLAIN ANALYZE`: the headline counters, the controller's event
    /// log (every collector report, grant change and switch decision),
    /// and the annotated plan that produced the final rows. This is the
    /// first thing to read when asking *why* a query did or did not
    /// re-optimize.
    pub fn report(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== query report ({:?} mode) ==", self.mode);
        let _ = writeln!(
            out,
            "rows: {}   simulated time: {:.1} ms",
            self.rows.len(),
            self.time_ms
        );
        let _ = writeln!(
            out,
            "I/O: {} page reads, {} page writes   cpu ops: {}   optimizer work: {}",
            self.cost.pages_read, self.cost.pages_written, self.cost.cpu_ops, self.cost.opt_work
        );
        let _ = writeln!(
            out,
            "plan switches: {}   memory re-allocations: {}   collector reports: {}   segment retries: {}",
            self.plan_switches, self.memory_reallocs, self.collector_reports, self.segment_retries
        );
        if self.events.is_empty() {
            let _ = writeln!(out, "\n-- controller events: none --");
        } else {
            let _ = writeln!(out, "\n-- controller events --");
            for (i, e) in self.events.iter().enumerate() {
                let _ = writeln!(out, "{:>3}. {e}", i + 1);
            }
        }
        let _ = writeln!(out, "\n-- final plan (of the last attempt) --");
        let _ = write!(out, "{}", self.final_plan);
        out
    }

    /// Render the EXPLAIN ANALYZE view of this outcome: the final plan
    /// annotated with estimated vs actual per-operator rows, re-opt
    /// point markers, and the controller's decision log.
    pub fn explain_analyze(&self) -> String {
        crate::explain::explain_analyze(self)
    }
}

/// Per-job execution environment: which clock to charge, which memory
/// manager to allocate from (under the concurrent runtime this is
/// lease-backed by the global broker), and how the job can be
/// interrupted. [`Engine::run`] uses a default environment (the
/// engine-wide clock and memory manager, no interrupts);
/// [`Engine::run_with`] lets the runtime supply a per-query one.
pub struct JobEnv {
    /// Engine query id: keys the checkpoint manifest, so a crashed
    /// query can be recovered by id. Must agree with `temp_prefix`
    /// (both come from [`Engine::next_query_id`]).
    pub query_id: u64,
    /// Clock all of this job's work is charged to (a
    /// [`SimClock::child`] of the engine clock under the runtime, so
    /// the global aggregate still sees every charge).
    pub clock: SimClock,
    /// Memory manager for this job's grants.
    pub mm: MemoryManager,
    /// Cooperative cancellation token, if the job is cancellable.
    pub cancel: Option<CancelToken>,
    /// Deadline in simulated milliseconds on `clock`.
    pub deadline_ms: Option<f64>,
    /// Temp-table prefix; must be unique across concurrently running
    /// queries (the shared catalog rejects duplicate names).
    pub temp_prefix: String,
    /// Deterministic fault schedule scoped onto the job's thread for
    /// the duration of the query (chaos testing). `None` = no faults.
    pub fault: Option<FaultInjector>,
    /// Observability handle scoped onto the job's thread for the
    /// duration of the query. `None` (or an inactive handle) keeps
    /// whatever scope the caller already installed — the engine only
    /// *adds* a scope when the handle actually carries a sink or a
    /// metrics registry.
    pub obs: Option<mq_obs::Obs>,
    /// Intra-query partitioned execution: when set, the optimized plan
    /// is parallelized with exchange operators and run by the
    /// partitioned driver (`mq-par`). `None` = serial execution.
    pub par: Option<ParSpec>,
}

/// Resource-leak audit over the engine's shared state. Only valid at
/// quiescence (no query in flight): every counter below is *expected*
/// to be transiently non-zero while queries run.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Re-optimizer temp tables still registered in the catalog.
    pub leaked_temp_tables: Vec<String>,
    /// `cache_*` catalog tables no cache entry (live or pinned-dead)
    /// knows about — debris of a crash mid-promotion. Reclaimable via
    /// [`Engine::sweep_cache_orphans`].
    pub orphan_cache_tables: Vec<String>,
    /// Disk pages owned by no heap file and no index.
    pub orphan_pages: usize,
    /// Buffer-pool accesses that never un-pinned (a closure unwound).
    pub pinned_frames: u64,
    /// Cleanup operations that failed since engine start (the temp
    /// table or its file survived a drop attempt; see
    /// [`Engine::cleanup_failure_count`]). Informational — failures
    /// leave survivors that the leak counters above already flag.
    pub cleanup_failures: u64,
    /// Stale `tmp_reopt_*` leftovers (tables + scratch files) swept
    /// since engine start by [`Engine::sweep_stale_temps`] — crashed
    /// queries nobody recovered. Informational: swept means reclaimed,
    /// not leaked, so this does not affect [`AuditReport::is_clean`].
    pub stale_swept: u64,
}

impl AuditReport {
    /// No leaked temp tables, no orphan cache tables, no orphan pages,
    /// no stuck pins.
    pub fn is_clean(&self) -> bool {
        self.leaked_temp_tables.is_empty()
            && self.orphan_cache_tables.is_empty()
            && self.orphan_pages == 0
            && self.pinned_frames == 0
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit: {} leaked temp table(s) {:?}, {} orphan cache table(s) {:?}, {} orphan page(s), {} stuck pin(s), {} cleanup failure(s), {} stale object(s) swept",
            self.leaked_temp_tables.len(),
            self.leaked_temp_tables,
            self.orphan_cache_tables.len(),
            self.orphan_cache_tables,
            self.orphan_pages,
            self.pinned_frames,
            self.cleanup_failures,
            self.stale_swept
        )
    }
}

/// What [`Engine::recover`] did for one crashed query.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Outcome of the resumed execution (rows are the full query
    /// result — salvaged segments feed the remainder plan).
    pub outcome: QueryOutcome,
    /// Recovery generation the resume ran as (1 = first recovery).
    pub generation: u32,
    /// Checkpointed segments whose temp tables validated and were
    /// reused instead of being recomputed.
    pub segments_salvaged: u32,
    /// Rows re-scanned while validating checkpoint fingerprints.
    pub validated_rows: u64,
    /// Unrecorded / partial temp tables swept during recovery.
    pub swept_tables: u64,
    /// Orphaned scratch files swept during recovery.
    pub swept_files: u64,
    /// Total simulated milliseconds recovery cost on the job clock:
    /// validation re-scans + sweep + the resumed execution itself.
    pub recovery_ms: f64,
}

/// Internal result of manifest validation + orphan sweep.
struct Salvage {
    salvaged: u32,
    validated_rows: u64,
    swept_tables: u64,
    swept_files: u64,
    resume_plan: LogicalPlan,
    salvaged_tables: Vec<String>,
}

/// For each field of `want`, its position in `have` — `Some` only when
/// the two schemas hold exactly the same qualified, typed fields (a
/// column permutation, as produced by the two orientations of a
/// fingerprint-equivalent join). `Some(identity)` when they are equal.
fn schema_permutation(have: &Schema, want: &Schema) -> Option<Vec<usize>> {
    if have.fields().len() != want.fields().len() {
        return None;
    }
    let mut used = vec![false; have.fields().len()];
    let mut map = Vec::with_capacity(want.fields().len());
    for f in want.fields() {
        let (idx, _) = have.fields().iter().enumerate().find(|(i, g)| {
            !used[*i] && g.dtype == f.dtype && g.qualified_name() == f.qualified_name()
        })?;
        used[idx] = true;
        map.push(idx);
    }
    Some(map)
}

/// Which query owns a `tmp_reopt_*` object: parses the query id out of
/// a temp-table name or scratch tag (`tmp_reopt_q<id>_…` for the
/// original run, `tmp_reopt_q<id>r<gen>_…` for recovery generations).
fn temp_owner(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("tmp_reopt_q")?;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// RAII unwinding for one query execution: whatever happens — success,
/// error, cancellation, plan switch, transient-fault retry — dropping
/// the guard clears the attempt's artifacts, reclaims every registered
/// temp file, and drops the temp tables this query materialized. This
/// replaces the old best-effort `cleanup_temps` call, which only ran on
/// the paths that remembered to call it.
struct CleanupGuard<'a> {
    engine: &'a Engine,
    ctx: &'a ExecContext,
    temps: Vec<String>,
}

impl<'a> CleanupGuard<'a> {
    fn new(engine: &'a Engine, ctx: &'a ExecContext) -> CleanupGuard<'a> {
        CleanupGuard {
            engine,
            ctx,
            temps: Vec::new(),
        }
    }

    /// Register a materialized temp table for end-of-query cleanup.
    fn track(&mut self, name: String) {
        self.temps.push(name);
    }

    /// Temp tables materialized so far (stats feedback skips them).
    fn temps(&self) -> &[String] {
        &self.temps
    }

    /// Drop one tracked-or-pending temp table immediately (used when a
    /// placeholder must not survive a failed materialization).
    fn drop_now(&mut self, name: &str) {
        self.temps.retain(|t| t != name);
        self.engine.drop_temp(name);
    }

    /// Stop tracking a temp table without dropping it — its file and
    /// rows changed owner (cache promotion).
    fn untrack(&mut self, name: &str) {
        self.temps.retain(|t| t != name);
    }
}

impl Drop for CleanupGuard<'_> {
    fn drop(&mut self) {
        self.ctx.clear_artifacts();
        let released = self.ctx.release_temp_files();
        let failures_before = self.engine.cleanup_failure_count();
        let temps = std::mem::take(&mut self.temps);
        let temp_tables = temps.len() as u64;
        for name in temps {
            self.engine.drop_temp(&name);
        }
        mq_obs::emit(|| ObsEvent::Cleanup {
            temp_tables,
            temp_files: released as u64,
            failures: self.engine.cleanup_failure_count() - failures_before,
        });
    }
}

/// A plan-switch temp table staged for cross-query promotion. Admitted
/// into the cache only after the whole query succeeds — a failed
/// query's temps die with its [`CleanupGuard`] as before.
struct PendingPromotion {
    /// Canonical fingerprint of the materialized cut subtree.
    fingerprint: u64,
    /// The `tmp_reopt_*` table holding the rows right now.
    temp_name: String,
    /// Output schema of the cut (probe-time splices require equality).
    schema: Schema,
    /// Exact counts observed while writing the temp.
    rows: u64,
    pages: u64,
    bytes: u64,
    /// Estimated producer cost — the per-hit saving the entry earns.
    build_cost_ms: f64,
    /// Base tables read by the cut, at their promotion-time versions.
    deps: Vec<(String, u64)>,
}

/// Outcome of the plan-cache probe [`Engine::run_with_sql`] performs
/// before entering the execution loop. Consumed by the loop's first
/// attempt only: a plan switch re-optimizes the remainder normally.
enum PlanCacheAction {
    /// Fresh template rebound with this query's literals: execute it
    /// directly, skipping optimization (and its work charge) entirely.
    Hit {
        plan: Box<PhysPlan>,
        /// Optimizer work units the cold run paid — the saving.
        saved_work: u64,
    },
    /// No servable template (miss, or stale-and-dropped): optimize in
    /// full, then enter the fresh plan under this normalized key.
    Enter {
        norm: NormalizedQuery,
        /// The query's SQL text, kept on the entry as the family's
        /// representative member — snapshots rebuild the template from
        /// it instead of serializing the physical plan.
        sql: String,
        /// `Some(reason)` when a stale entry was dropped — the re-run
        /// of the optimizer is the `plan_cache_reoptimized` event.
        stale: Option<&'static str>,
    },
}

/// [`CardFeedback`] over the engine's feedback store: an observation
/// counts only while every base table it was derived from is still at
/// its recorded data version.
struct EngineFeedback<'a>(&'a Engine);

impl CardFeedback for EngineFeedback<'_> {
    fn observed_rows(&self, fingerprint: u64) -> Option<f64> {
        let e = self.0.feedback.get(fingerprint)?;
        e.deps
            .iter()
            .all(|(t, v)| self.0.catalog.data_version(t) == Some(*v))
            .then_some(e.rows)
    }
}

/// The engine: shared storage/catalog plus the re-optimization stack.
pub struct Engine {
    cfg: EngineConfig,
    clock: SimClock,
    storage: Storage,
    catalog: Catalog,
    optimizer: Optimizer,
    mm: MemoryManager,
    calibration: Arc<OptCalibration>,
    query_seq: AtomicU64,
    cleanup_failures: AtomicU64,
    manifests: ManifestStore,
    stale_swept: AtomicU64,
    /// Cross-query sub-plan materialization cache (probe/splice is
    /// gated on [`EngineConfig::cache_enabled`]).
    cache: SubPlanCache,
    /// Cross-query observed-cardinality store, consulted by the
    /// optimizer post-pass before trusting catalog estimates.
    feedback: FeedbackStore,
    /// Normalized-SQL plan cache: optimized plan templates keyed by
    /// query family (probing is gated on
    /// [`EngineConfig::plan_cache_enabled`]).
    plancache: PlanCache,
    /// Large-estimation-error counters per (table, column), driving
    /// the adaptive histogram refresh.
    hist_errors: Mutex<HashMap<(String, String), u32>>,
}

impl Engine {
    /// Build an engine (calibrating the optimizer for Equation 1).
    pub fn new(cfg: EngineConfig) -> Result<Engine> {
        cfg.validate()?;
        let clock = SimClock::new();
        let storage = Storage::new(&cfg, clock.clone());
        let catalog = Catalog::new();
        let optimizer = Optimizer::new(cfg.clone());
        let mm = MemoryManager::new(&cfg);
        let calibration = Arc::new(OptCalibration::run(&cfg, 6)?);
        let cache = SubPlanCache::with_shards(cfg.cache_budget_bytes as u64, cfg.cache_shards);
        let plancache = PlanCache::new(cfg.plan_cache_entries);
        let engine = Engine {
            cfg,
            clock,
            storage,
            catalog,
            optimizer,
            mm,
            calibration,
            query_seq: AtomicU64::new(0),
            cleanup_failures: AtomicU64::new(0),
            manifests: ManifestStore::new(),
            stale_swept: AtomicU64::new(0),
            cache,
            feedback: FeedbackStore::new(),
            plancache,
            hist_errors: Mutex::new(HashMap::new()),
        };
        // Startup invariant: no stale re-optimizer leftovers survive an
        // engine (re)start. Vacuous on a fresh catalog, but loaders that
        // restore a snapshot with crash debris start clean.
        engine.sweep_stale_temps();
        Ok(engine)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Override the configuration (e.g. per-experiment knobs). Takes
    /// effect for subsequent queries.
    pub fn set_config(&mut self, cfg: EngineConfig) -> Result<()> {
        cfg.validate()?;
        self.optimizer = Optimizer::new(cfg.clone());
        self.mm = MemoryManager::new(&cfg);
        // A shrunk cache budget evicts immediately; entries survive a
        // disable (probing just stops) so a re-enable starts warm.
        for e in self.cache.set_budget(cfg.cache_budget_bytes as u64) {
            self.retire_cache_entry(e);
        }
        // Same policy for the plan cache: a shrunk capacity evicts
        // immediately, a disable keeps entries for a warm re-enable.
        for key in self.plancache.set_capacity(cfg.plan_cache_entries) {
            mq_obs::emit(|| ObsEvent::PlanCacheEvict { key: key.clone() });
        }
        self.cfg = cfg;
        Ok(())
    }

    /// Shared storage handle (loaders use this).
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Shared catalog handle.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Fresh query id (used to keep temp-table names unique across
    /// concurrently running queries).
    pub fn next_query_id(&self) -> u64 {
        self.query_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// The default per-job environment: the engine-wide clock and
    /// memory manager, no interrupts, and a unique temp prefix.
    pub fn default_env(&self) -> JobEnv {
        let query_id = self.next_query_id();
        JobEnv {
            query_id,
            clock: self.clock.clone(),
            mm: self.mm.clone(),
            cancel: None,
            deadline_ms: None,
            temp_prefix: format!("tmp_reopt_q{query_id}_"),
            fault: None,
            obs: None,
            par: None,
        }
    }

    /// The engine's checkpoint-manifest store. A query id listed in
    /// [`ManifestStore::open_queries`] after its job returned
    /// [`MqError::Crash`] is recoverable via [`Engine::recover`].
    pub fn manifests(&self) -> &ManifestStore {
        &self.manifests
    }

    /// Audit the engine's shared state for resource leaks. Only
    /// meaningful at quiescence — while queries run, pins, temp tables
    /// and not-yet-reclaimed pages are all legitimately non-zero.
    pub fn audit(&self) -> AuditReport {
        let known_cache = self.cache.known_tables();
        AuditReport {
            leaked_temp_tables: self
                .catalog
                .table_names()
                .into_iter()
                .filter(|n| n.starts_with("tmp_reopt_"))
                .collect(),
            orphan_cache_tables: self
                .catalog
                .table_names()
                .into_iter()
                .filter(|n| n.starts_with("cache_") && !known_cache.contains(n))
                .collect(),
            orphan_pages: self.storage.orphan_pages(),
            pinned_frames: self.storage.pool().pinned(),
            cleanup_failures: self.cleanup_failures.load(Ordering::Relaxed),
            stale_swept: self.stale_swept.load(Ordering::Relaxed),
        }
    }

    /// Cleanup operations that failed since engine start.
    pub fn cleanup_failure_count(&self) -> u64 {
        self.cleanup_failures.load(Ordering::Relaxed)
    }

    /// The cross-query sub-plan materialization cache.
    pub fn cache(&self) -> &SubPlanCache {
        &self.cache
    }

    /// The cross-query cardinality feedback store.
    pub fn feedback(&self) -> &FeedbackStore {
        &self.feedback
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The normalized-SQL plan cache.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plancache
    }

    /// Snapshot of the plan-cache counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plancache.stats()
    }

    /// Drop every cached plan template (counters survive) and reset
    /// the adaptive histogram-refresh error counters.
    pub fn clear_plan_cache(&self) {
        self.plancache.clear();
        self.hist_errors.lock().clear();
    }

    /// Drop every cache entry (and its backing table and file) and
    /// forget all cardinality feedback. Entries pinned by in-flight
    /// queries are marked dead and reclaimed when those queries finish;
    /// at quiescence the catalog holds no `cache_*` table afterwards.
    pub fn clear_cache(&self) {
        for e in self.cache.clear() {
            self.retire_cache_entry(e);
        }
        self.reclaim_dead_cache();
        self.feedback.clear();
    }

    /// Invalidate cache entries and feedback derived from `table` at an
    /// older data version. Probe-time validation already guarantees no
    /// stale entry is ever served; this eagerly reclaims the space.
    /// Call after writing to a base table.
    pub fn invalidate_cache_for(&self, table: &str) {
        let Some(version) = self.catalog.data_version(table) else {
            return;
        };
        for e in self.cache.invalidate_table(table, version) {
            self.retire_cache_entry(e);
        }
        self.feedback.invalidate_table(table, version);
    }

    /// Drop `cache_*` catalog tables no cache entry knows about —
    /// debris of a crash between cache-table registration and cache
    /// admission. Like the audit, only meaningful at quiescence.
    /// Returns the number of tables swept.
    pub fn sweep_cache_orphans(&self) -> u64 {
        let known = self.cache.known_tables();
        let mut swept = 0u64;
        for name in self.catalog.table_names() {
            if name.starts_with("cache_") && !known.contains(&name) {
                self.drop_temp(&name);
                swept += 1;
            }
        }
        self.stale_swept.fetch_add(swept, Ordering::Relaxed);
        swept
    }

    /// Retire dead (invalidated-while-pinned) entries whose last pin
    /// has dropped, reclaiming their tables and files.
    fn reclaim_dead_cache(&self) {
        for e in self.cache.drain_dead() {
            self.retire_cache_entry(e);
        }
    }

    /// Drop a retired cache entry's table and file and trace the
    /// retirement.
    fn retire_cache_entry(&self, e: CacheEntry) {
        mq_obs::emit(|| ObsEvent::CacheEvict {
            fingerprint: e.fingerprint,
            table: e.table.clone(),
            bytes: e.bytes,
        });
        self.drop_temp(&e.table);
    }

    /// Run a query under the given re-optimization mode.
    pub fn run(&self, logical: &LogicalPlan, mode: ReoptMode) -> Result<QueryOutcome> {
        self.run_with(logical, mode, self.default_env())
    }

    /// Run a query under an explicit per-job environment. This is the
    /// entry point the concurrent runtime uses: `env.clock` is a child
    /// of the engine clock (scoped onto this thread so shared-component
    /// charges are attributed to the job), `env.mm` is lease-backed by
    /// the global memory broker, and cancel/deadline make the job
    /// interruptible at segment boundaries.
    pub fn run_with(
        &self,
        logical: &LogicalPlan,
        mode: ReoptMode,
        env: JobEnv,
    ) -> Result<QueryOutcome> {
        self.run_with_pc(logical, mode, env, None)
    }

    /// [`Engine::run_with`] for a query that arrived as SQL text: the
    /// plan cache is probed with the normalized family key before the
    /// optimizer runs, so a warm family skips join enumeration
    /// entirely (the rebound template executes with zero optimizer
    /// work charged). Non-SELECT or non-normalizable text degrades to
    /// the ordinary path.
    pub fn run_with_sql(
        &self,
        logical: &LogicalPlan,
        sql: &str,
        mode: ReoptMode,
        env: JobEnv,
    ) -> Result<QueryOutcome> {
        let pc = if self.cfg.plan_cache_enabled {
            self.consult_plan_cache(sql)
        } else {
            None
        };
        self.run_with_pc(logical, mode, env, pc)
    }

    /// [`Engine::run_with_sql`] for a statement bound by the
    /// prepared-statement layer: the caller already holds the member's
    /// normalized form, so the probe skips the normalizer entirely —
    /// the hot path a repeated `Prepared::run` takes. Everything else
    /// (hit executes the rebound template with zero optimizer work,
    /// stale forces one full re-enumeration that re-enters the
    /// template) matches the SQL path.
    pub fn run_prepared(
        &self,
        logical: &LogicalPlan,
        sql: &str,
        norm: &NormalizedQuery,
        mode: ReoptMode,
        env: JobEnv,
    ) -> Result<QueryOutcome> {
        let pc = if self.cfg.plan_cache_enabled {
            Some(self.consult_norm(norm.clone(), sql))
        } else {
            None
        };
        self.run_with_pc(logical, mode, env, pc)
    }

    /// Probe the plan cache for `sql`'s family. The freshness closure
    /// encodes the staleness policy: a dependency table whose data
    /// version moved, or feedback corrections against the template's
    /// fingerprints accumulating past `plan_cache_staleness`, drop the
    /// entry so the caller's full re-optimization re-enters it.
    fn consult_plan_cache(&self, sql: &str) -> Option<PlanCacheAction> {
        let norm = normalize(sql)?;
        Some(self.consult_norm(norm, sql))
    }

    /// [`Engine::consult_plan_cache`] with the normalization already
    /// done (the prepared path supplies it).
    fn consult_norm(&self, norm: NormalizedQuery, sql: &str) -> PlanCacheAction {
        let probe = self.plancache.probe(&norm, |e| {
            if !e
                .deps
                .iter()
                .all(|(t, v)| self.catalog.data_version(t) == Some(*v))
            {
                Freshness::StaleWrite
            } else if self
                .feedback
                .applied_sum(&e.fingerprints)
                .saturating_sub(e.applied_at)
                >= self.cfg.plan_cache_staleness
            {
                Freshness::StaleFeedback
            } else {
                Freshness::Fresh
            }
        });
        match probe {
            mq_plancache::PlanProbe::Hit(plan, saved_work) => {
                PlanCacheAction::Hit { plan, saved_work }
            }
            mq_plancache::PlanProbe::Stale(verdict) => PlanCacheAction::Enter {
                norm,
                sql: sql.to_string(),
                stale: Some(match verdict {
                    Freshness::StaleWrite => "write",
                    _ => "feedback",
                }),
            },
            mq_plancache::PlanProbe::Miss => PlanCacheAction::Enter {
                norm,
                sql: sql.to_string(),
                stale: None,
            },
        }
    }

    fn run_with_pc(
        &self,
        logical: &LogicalPlan,
        mode: ReoptMode,
        env: JobEnv,
        pc: Option<PlanCacheAction>,
    ) -> Result<QueryOutcome> {
        // While this job runs on this thread, charges made against the
        // engine-wide clock (by shared Storage / the buffer pool) are
        // also attributed to the job clock — exactly once each.
        let _scope = env.clock.enter_scope();
        // Likewise the fault schedule: scoped onto this thread so the
        // storage/memory layers consult it without plumbing. Counters
        // live in the injector (shared across scopes), so a segment
        // retry continues the schedule past the fault it just absorbed.
        let _fault_scope = env.fault.as_ref().map(FaultInjector::enter_scope);
        // Observability scope: events emitted anywhere below (broker
        // grants, executor spills, controller decisions) flow to this
        // job's sink and metrics registry. Inactive handles are skipped
        // so an outer scope the caller installed keeps receiving the
        // events instead of being shadowed by a no-op.
        let _obs_scope = env
            .obs
            .as_ref()
            .filter(|o| o.is_active())
            .map(mq_obs::Obs::enter_scope);
        let mode_str = match mode {
            ReoptMode::Off => "off",
            ReoptMode::MemoryOnly => "memory-only",
            ReoptMode::PlanOnly => "plan-only",
            ReoptMode::Full => "full",
        };
        mq_obs::emit(|| ObsEvent::QueryStart { mode: mode_str });
        let t0 = env.clock.snapshot();
        // Parallel savings already credited to this (shared) clock by
        // earlier jobs must not be attributed to this query.
        let saved0 = env.clock.parallel_saved_ms();
        let mut ctx = ExecContext::new(self.storage.clone(), env.clock.clone(), self.cfg.clone())
            .with_interrupts(env.cancel.clone(), env.deadline_ms);
        // Per-operator cpu/io profiling costs two clock snapshots per
        // operator call; only pay it when a sink is listening.
        ctx.profile_detail = mq_obs::sink_active();
        // Tag every temp file this job creates with its temp prefix —
        // the simulated per-query scratch directory. After a crash,
        // recovery finds the abandoned partial outputs by this tag.
        ctx.scratch_tag = Some(env.temp_prefix.clone());
        let controller = Rc::new(ReoptController::new(
            mode,
            self.cfg.clone(),
            self.catalog.clone(),
            self.storage.clone(),
            self.optimizer.clone(),
            Arc::clone(&self.calibration),
            env.mm.clone(),
            env.clock.clone(),
            ctx.share_grants(),
            env.temp_prefix.clone(),
        ));
        let ctx = if mode.collects() {
            ctx.with_monitor(controller.clone())
        } else {
            ctx
        };

        // From here on the guard owns unwinding: artifacts, temp files
        // and materialized temp tables are reclaimed on *every* exit
        // path — success, error, cancellation, plan switch — without
        // any path having to remember to clean up.
        let mut guard = CleanupGuard::new(self, &ctx);
        // Pins on spliced cache entries: held for the whole query (all
        // attempts), so eviction/invalidation can never drop a table a
        // remainder plan still references.
        let mut cache_pins: Vec<PinGuard> = Vec::new();
        // Plan-switch temps staged for cross-query promotion; finalized
        // only if the query succeeds.
        let mut promotions: Vec<PendingPromotion> = Vec::new();
        // Open the checkpoint manifest before any segment can complete.
        // On a recovery resume this rolls the generation over instead
        // (the salvaged temp tables become the protected set).
        self.manifests
            .begin(env.query_id, logical.clone(), mode, env.temp_prefix.clone());
        let mut segment_retries: u32 = 0;
        let mut attempt: u32 = 0;
        let mut completed_segments: u32 = 0;
        let mut current = logical.clone();
        let mut pc = pc;
        let result = loop {
            // The probe verdict applies to the first attempt only: a
            // plan-switch remainder is a different logical query.
            let mut plan_cache_enter: Option<(NormalizedQuery, String, Option<&'static str>)> =
                None;
            let mut plan = match pc.take() {
                Some(PlanCacheAction::Hit { plan, saved_work }) => {
                    // Warm family: the rebound template replaces the
                    // whole optimize step. No optimizer work is
                    // charged — skipping enumeration is the point.
                    mq_obs::emit(|| ObsEvent::PlanCacheHit { saved_work });
                    controller.note(format!(
                        "plancache: hit (skipped {saved_work} optimizer work units)"
                    ));
                    *plan
                }
                action => {
                    // With the cache on, the feedback store steers
                    // planning itself: observed base-relation
                    // cardinalities enter the join enumeration, so a
                    // repeated query family gets the join order the
                    // first run had to discover mid-query.
                    let use_feedback = self.cfg.cache_enabled && !self.feedback.is_empty();
                    let opt = match self.optimizer.optimize_with_feedback(
                        &current,
                        &self.catalog,
                        &self.storage,
                        use_feedback.then_some(&EngineFeedback(self) as &dyn CardFeedback),
                    ) {
                        Ok(o) => o,
                        Err(e) => break Err(e),
                    };
                    env.clock.add_opt_work(opt.work_units);
                    if self.cfg.cache_enabled {
                        for h in &opt.feedback_hits {
                            self.feedback.note_applied_for(h.fingerprint);
                            mq_obs::emit(|| ObsEvent::FeedbackApplied {
                                fingerprint: h.fingerprint,
                                estimated_rows: h.estimated_rows,
                                observed_rows: h.observed_rows,
                            });
                            controller.note(format!(
                                "feedback: planned {} with observed {:.0} rows (est {:.0}, fp {:016x})",
                                h.table, h.observed_rows, h.estimated_rows, h.fingerprint
                            ));
                        }
                        // Repeated large errors against one base-table
                        // column mean the histogram itself is wrong —
                        // rebuild just that column instead of patching
                        // around it per fingerprint forever.
                        self.maybe_refresh_histograms(&opt.feedback_hits, &controller);
                    }
                    if let Some(PlanCacheAction::Enter { norm, sql, stale }) = action {
                        plan_cache_enter = Some((norm, sql, stale));
                    }
                    let mut plan = opt.plan;
                    if self.cfg.cache_enabled {
                        // Post-pass for sub-trees the graph override
                        // cannot reach (joins observed by collectors),
                        // before collectors, which would otherwise
                        // decorate sub-trees a later splice removes.
                        self.consult_feedback(&mut plan, &controller);
                    }
                    // Capture the template *after* the feedback
                    // post-pass (so the cached estimates start from
                    // truth) but *before* the materialization-cache
                    // splice and collector insertion, which decorate
                    // the plan with query-local state.
                    if let Some((norm, sql, stale)) = plan_cache_enter.take() {
                        self.enter_plan_cache(
                            &plan,
                            &norm,
                            &sql,
                            stale,
                            opt.work_units,
                            &controller,
                        );
                    }
                    plan
                }
            };
            if self.cfg.cache_enabled {
                self.probe_cache(&mut plan, &mut cache_pins, &controller);
            }
            if mode.collects() {
                if let Err(e) = insert_collectors(&mut plan, &self.catalog, &self.cfg) {
                    break Err(e);
                }
            }
            // Parallelize after collector insertion (exchanges go above
            // collectors, which then run per bucket in capture mode) and
            // before allocation/recost, so grants and costs see the
            // final node ids.
            if let Some(par) = &env.par {
                if let Err(e) = parallelize(&mut plan, par, &self.cfg) {
                    break Err(e);
                }
            }
            if let Err(e) = env.mm.allocate(&mut plan, &self.cfg) {
                break Err(e);
            }
            recost(&mut plan, &self.cfg);
            controller.begin_attempt(plan.clone());
            attempt += 1;
            mq_obs::emit(|| {
                let mut nodes = 0u64;
                plan.walk(&mut |_| nodes += 1);
                ObsEvent::SegmentStart {
                    attempt,
                    plan_nodes: nodes,
                }
            });
            // The actuals of an abandoned attempt describe nodes of an
            // abandoned plan; the final attempt starts from scratch.
            ctx.reset_actuals();

            let run = match &env.par {
                Some(par) => run_partitioned(&plan, &ctx, par, &self.cfg)
                    .map(|(rows, report)| (rows, Some(report))),
                None => run_to_vec(&plan, &ctx).map(|rows| (rows, None)),
            };
            match run {
                Ok((rows, par_report)) => {
                    mq_obs::emit(|| ObsEvent::SegmentEnd {
                        attempt,
                        outcome: SegmentOutcome::Done,
                    });
                    let (memory_reallocs, collector_reports) = controller.counters();
                    // Elapsed simulated time = serial cost minus what
                    // overlapping partitions absorbed (zero when serial).
                    let saved = (env.clock.parallel_saved_ms() - saved0).max(0.0);
                    break Ok(QueryOutcome {
                        rows,
                        cost: env.clock.snapshot().since(&t0),
                        time_ms: (env.clock.snapshot().since(&t0).time_ms(&self.cfg) - saved)
                            .max(0.0),
                        mode,
                        plan_switches: controller.switches(),
                        segment_retries,
                        memory_reallocs,
                        collector_reports,
                        events: controller.take_events(),
                        final_plan: plan,
                        actuals: ctx.take_actuals(),
                        par: par_report,
                    });
                }
                Err(MqError::PlanSwitch(raw)) => {
                    mq_obs::emit(|| ObsEvent::SegmentEnd {
                        attempt,
                        outcome: SegmentOutcome::PlanSwitch,
                    });
                    let Some(pending) = controller.take_pending() else {
                        break Err(MqError::Internal(
                            "plan switch without pending decision".into(),
                        ));
                    };
                    debug_assert_eq!(pending.cut, NodeId(raw));
                    // Finish the cut subtree into the temp table. The
                    // build artifact survived the unwind, so only the
                    // probe phase (plus the write) is paid here — the
                    // paper's "finish execution of the last operator
                    // and write the result to a temporary file".
                    controller.set_suppressed(true);
                    let sub = plan.find(pending.cut).cloned();
                    let mat = match &sub {
                        Some(sub) => materialize(sub, &ctx),
                        None => Err(MqError::Internal("cut not in plan".into())),
                    };
                    controller.set_suppressed(false);
                    let mat = match mat {
                        Ok(mat) => mat,
                        Err(e @ MqError::Crash(_)) => {
                            // Killed mid-materialization: the placeholder
                            // table and the partial (still scratch-tagged)
                            // output stay behind for recovery to sweep —
                            // a real kill cleans up nothing either.
                            break Err(e);
                        }
                        Err(e) => {
                            // The controller registered a placeholder
                            // for the temp table; it must not survive a
                            // failed materialization.
                            guard.drop_now(&pending.temp_name);
                            if self.should_retry_segment(&e, segment_retries) {
                                segment_retries += 1;
                                self.prepare_segment_retry(
                                    &env,
                                    &ctx,
                                    &controller,
                                    segment_retries,
                                    &e,
                                );
                                // `current` unchanged: re-run the
                                // pre-switch remainder from its
                                // materialized inputs.
                                continue;
                            }
                            break Err(e);
                        }
                    };

                    // Swap the placeholder for the real file + stats.
                    let mat_rows = mat.stats.rows;
                    let mat_pages = mat.stats.pages;
                    let mat_bytes = mat.stats.bytes() as u64;
                    let mat_schema = mat.schema.clone();
                    let placeholder = match self.catalog.drop_table(&pending.temp_name) {
                        Ok(p) => p,
                        Err(e) => break Err(e),
                    };
                    let _ = self.storage.drop_file(placeholder.file);
                    if let Err(e) = self.catalog.register_materialized(
                        &pending.temp_name,
                        mat.file,
                        mat.schema,
                        mat.stats,
                    ) {
                        break Err(e);
                    }
                    guard.track(pending.temp_name.clone());
                    // The catalog owns the materialized file now.
                    ctx.forget_temp_file(mat.file);

                    // Data before manifest: only now that the temp table
                    // is fully written *and* registered does the segment
                    // get its completion record. A crash between the two
                    // leaves at worst an unrecorded, sweepable table.
                    completed_segments += 1;
                    self.manifests.append(
                        env.query_id,
                        CheckpointRecord {
                            segment: completed_segments,
                            temp_table: pending.temp_name.clone(),
                            rows: mat_rows,
                            fingerprint: mat.fingerprint,
                            remainder_hash: plan_hash(&pending.remainder),
                        },
                        pending.remainder.clone(),
                    );

                    // Stage the fully-written temp for cross-query
                    // promotion (and feed its exact cardinality back).
                    if self.cfg.cache_enabled {
                        if let Some(sub) = &sub {
                            self.stage_promotion(
                                &mut promotions,
                                sub,
                                &pending.temp_name,
                                mat_schema,
                                mat_rows,
                                mat_pages,
                                mat_bytes,
                            );
                        }
                        // The abandoned attempt's completed collectors
                        // observed true cardinalities *below* the cut
                        // (e.g. the mis-estimated leaf that triggered
                        // the switch); harvest them before the next
                        // attempt resets the controller's observations,
                        // or the next planning of this family repeats
                        // the same leaf mistake in a new join order.
                        self.record_collector_feedback(&plan, &controller, guard.temps());
                    }

                    // Stale per-attempt state.
                    ctx.clear_artifacts();
                    ctx.clear_grants();
                    current = pending.remainder;
                    continue;
                }
                Err(other) => {
                    mq_obs::emit(|| ObsEvent::SegmentEnd {
                        attempt,
                        outcome: SegmentOutcome::Error,
                    });
                    if self.should_retry_segment(&other, segment_retries) {
                        segment_retries += 1;
                        self.prepare_segment_retry(
                            &env,
                            &ctx,
                            &controller,
                            segment_retries,
                            &other,
                        );
                        // `current` unchanged: the segment re-runs from
                        // its already-materialized inputs (the temp
                        // tables the guard still holds).
                        continue;
                    }
                    break Err(other);
                }
            }
        };
        if let Err(MqError::Crash(cause)) = &result {
            // Simulated `kill -9`: abandon all in-flight state exactly
            // as a dying process would. The guard is *forgotten*, not
            // dropped — artifacts, scratch files and materialized temp
            // tables stay behind — and the manifest stays open so
            // [`Engine::recover`] can salvage the completed segments.
            mq_obs::emit(|| ObsEvent::CrashInjected {
                query_id: env.query_id,
                cause: cause.clone(),
            });
            std::mem::forget(guard);
            return result;
        }
        // Promote the staged plan-switch temps before closing the
        // manifest: a crash at the promotion kill point leaves the
        // manifest open (recoverable) plus at worst one orphan cache
        // table for [`Engine::sweep_cache_orphans`] — never a cache
        // entry without its table.
        if result.is_ok() && self.cfg.cache_enabled {
            if let Err(e @ MqError::Crash(_)) =
                self.finalize_promotions(&env, promotions, &mut guard)
            {
                if let MqError::Crash(cause) = &e {
                    mq_obs::emit(|| ObsEvent::CrashInjected {
                        query_id: env.query_id,
                        cause: cause.clone(),
                    });
                }
                std::mem::forget(guard);
                return Err(e);
            }
        }
        self.manifests.remove(env.query_id);
        if let Ok(outcome) = &result {
            if self.cfg.stats_feedback && mode.collects() {
                self.apply_stats_feedback(&outcome.final_plan, &controller, guard.temps());
            }
            if self.cfg.cache_enabled && mode.collects() {
                self.record_collector_feedback(&outcome.final_plan, &controller, guard.temps());
            }
        }
        // Cleanup runs (and emits its event) before the query-end
        // marker so a trace reads in causal order.
        drop(guard);
        // Pins released only now that the final attempt is done; then
        // retire anything invalidated while we held it alive.
        drop(cache_pins);
        self.reclaim_dead_cache();
        self.emit_query_end(&result, &env, &t0, saved0, &controller, segment_retries);
        result
    }

    /// Emit the end-of-query trace event and fold the final attempt's
    /// per-operator actuals into the scoped metrics registry. No-op
    /// when no observability scope is active.
    fn emit_query_end(
        &self,
        result: &Result<QueryOutcome>,
        env: &JobEnv,
        t0: &CostSnapshot,
        saved0: f64,
        controller: &ReoptController,
        segment_retries: u32,
    ) {
        if !mq_obs::active() {
            return;
        }
        let cost = env.clock.snapshot().since(t0);
        let saved = (env.clock.parallel_saved_ms() - saved0).max(0.0);
        let (memory_reallocs, collector_reports) = controller.counters();
        let (outcome_str, rows) = match result {
            Ok(o) => ("ok".to_string(), o.rows.len() as u64),
            Err(e) => (e.kind().to_string(), 0),
        };
        mq_obs::emit(|| ObsEvent::QueryEnd {
            outcome: outcome_str,
            rows,
            sim_ms: (cost.time_ms(&self.cfg) - saved).max(0.0),
            pages_read: cost.pages_read,
            pages_written: cost.pages_written,
            cpu_ops: cost.cpu_ops,
            opt_work: cost.opt_work,
            plan_switches: u64::from(controller.switches()),
            segment_retries: u64::from(segment_retries),
            memory_reallocs: u64::from(memory_reallocs),
            collector_reports: u64::from(collector_reports),
        });
        if let Ok(o) = result {
            mq_obs::with_metrics(|m| {
                o.final_plan.walk(&mut |n| {
                    let Some(a) = o.actuals.get(&n.id) else {
                        return;
                    };
                    let op = n.op.name();
                    let labels = [("op", op)];
                    m.inc(
                        "midq_operator_rows_total",
                        &labels,
                        mq_obs::Stability::Stable,
                        a.rows,
                    );
                    // cpu/io deltas depend on physical shared state
                    // (buffer-pool hits vary with interleaving).
                    m.inc(
                        "midq_operator_cpu_ops_total",
                        &labels,
                        mq_obs::Stability::Volatile,
                        a.cpu_ops,
                    );
                    m.inc(
                        "midq_operator_io_pages_total",
                        &labels,
                        mq_obs::Stability::Volatile,
                        a.io_pages,
                    );
                });
            });
        }
    }

    /// Is this error a transient fault with retry budget left?
    fn should_retry_segment(&self, e: &MqError, retries_so_far: u32) -> bool {
        e.is_transient() && retries_so_far < self.cfg.transient_retry_limit
    }

    /// Reset per-attempt state for a segment retry and charge the
    /// exponential backoff (simulated) for it. Materialized temp tables
    /// survive — they are the restart point.
    fn prepare_segment_retry(
        &self,
        env: &JobEnv,
        ctx: &ExecContext,
        controller: &ReoptController,
        retry: u32,
        cause: &MqError,
    ) {
        controller.note(format!(
            "segment retry {retry}/{}: transient fault absorbed ({cause})",
            self.cfg.transient_retry_limit
        ));
        mq_obs::emit(|| ObsEvent::SegmentRetry {
            retry,
            limit: self.cfg.transient_retry_limit,
            cause: cause.to_string(),
        });
        ctx.clear_artifacts();
        let _ = ctx.release_temp_files();
        ctx.clear_grants();
        self.charge_backoff(env, retry);
    }

    /// Charge the simulated clock for the retry backoff:
    /// `transient_retry_backoff_ms × 2^(retry−1)`, expressed in CPU ops.
    fn charge_backoff(&self, env: &JobEnv, retry: u32) {
        if self.cfg.cpu_op_ms <= 0.0 {
            return;
        }
        let factor = f64::from(1u32 << retry.saturating_sub(1).min(16));
        let backoff_ms = self.cfg.transient_retry_backoff_ms * factor;
        env.clock
            .add_cpu((backoff_ms / self.cfg.cpu_op_ms).ceil() as u64);
    }

    /// Optimizer post-pass over the feedback store: re-stamp `est_rows`
    /// wherever a previous query observed this exact sub-plan's true
    /// cardinality, so the controller's divergence baseline starts from
    /// truth and repeated query families re-optimize less.
    fn consult_feedback(&self, plan: &mut PhysPlan, controller: &ReoptController) {
        if self.feedback.is_empty() {
            return;
        }
        let hits = apply_feedback(plan, &EngineFeedback(self), &self.cfg);
        for h in &hits {
            self.feedback.note_applied_for(h.fingerprint);
            mq_obs::emit(|| ObsEvent::FeedbackApplied {
                fingerprint: h.fingerprint,
                estimated_rows: h.estimated_rows,
                observed_rows: h.observed_rows,
            });
            controller.note(format!(
                "feedback: est {:.0} -> observed {:.0} rows (fp {:016x})",
                h.estimated_rows, h.observed_rows, h.fingerprint
            ));
        }
    }

    /// Enter a freshly optimized plan into the plan cache as the
    /// template for `norm`'s family, recording the dependencies and
    /// feedback baseline the staleness policy judges it by. Plans
    /// reading another query's temp or cache tables are not a pure
    /// function of base data and are skipped.
    fn enter_plan_cache(
        &self,
        plan: &PhysPlan,
        norm: &NormalizedQuery,
        sql: &str,
        stale: Option<&'static str>,
        work_units: u64,
        controller: &ReoptController,
    ) {
        // The probe already counted this run as a miss or stale drop;
        // emit the matching event before any early return below so the
        // event stream stays consistent with the probe-side counters
        // even when the plan turns out to be uncacheable.
        match stale {
            Some(reason) => {
                mq_obs::emit(|| ObsEvent::PlanCacheStale { reason });
                controller.note(format!("plancache: stale ({reason}), re-enumerated"));
            }
            None => {
                mq_obs::emit(|| ObsEvent::PlanCacheMiss);
                controller.note("plancache: miss".to_string());
            }
        }
        match self.admit_template(plan, norm, sql, work_units) {
            Ok(()) => controller.note("plancache: template entered".to_string()),
            Err(reason) => controller.note(format!("plancache: not entered ({reason})")),
        }
    }

    /// Capture `plan` as the template for `norm`'s family and admit it,
    /// recording dependencies, the feedback baseline and the
    /// representative SQL. `Err(reason)` when the plan is not a pure
    /// function of base data (reads temp or cache tables). Shared by
    /// the execution path ([`Engine::enter_plan_cache`]) and the warm-up
    /// paths (snapshot restore, [`Engine::prime_template`]).
    fn admit_template(
        &self,
        plan: &PhysPlan,
        norm: &NormalizedQuery,
        sql: &str,
        work_units: u64,
    ) -> std::result::Result<(), String> {
        let tables = base_tables(plan);
        let mut deps = Vec::with_capacity(tables.len());
        for t in tables {
            if t.starts_with("tmp_reopt_") || t.starts_with("cache_") {
                return Err(format!(
                    "{t} is query-local, plan is not a pure function of base data"
                ));
            }
            let Some(v) = self.catalog.data_version(&t) else {
                return Err(format!("{t} has no data version"));
            };
            deps.push((t, v));
        }
        let mut entry = CachedPlan::capture(plan, norm, work_units, deps, 0);
        entry.applied_at = self.feedback.applied_sum(&entry.fingerprints);
        entry.sql = Some(sql.to_string());
        for key in self.plancache.insert(&norm.key, entry) {
            mq_obs::emit(|| ObsEvent::PlanCacheEvict { key: key.clone() });
        }
        Ok(())
    }

    /// Pin a template for `sql`'s family without executing the query:
    /// parse, bind and optimize once (off any job clock — no query is
    /// charged) and admit the captured template. Returns `true` when a
    /// template was admitted, `false` when the statement is not
    /// normalizable, the cache is disabled, or a template is already
    /// present. `Database::prepare` pins templates through this, and
    /// snapshot restore replays persisted families through it — both
    /// make the *next* run of the family a hit with zero optimizer
    /// work.
    pub fn prime_template(&self, sql: &str) -> Result<bool> {
        if !self.cfg.plan_cache_enabled {
            return Ok(false);
        }
        let Some(norm) = normalize(sql) else {
            return Ok(false);
        };
        if self.plancache.contains(&norm.key) {
            return Ok(false);
        }
        let logical = mq_sql::plan_sql(sql, &self.catalog)?;
        let use_feedback = self.cfg.cache_enabled && !self.feedback.is_empty();
        let opt = self.optimizer.optimize_with_feedback(
            &logical,
            &self.catalog,
            &self.storage,
            use_feedback.then_some(&EngineFeedback(self) as &dyn CardFeedback),
        )?;
        Ok(self
            .admit_template(&opt.plan, &norm, sql, opt.work_units)
            .is_ok())
    }

    /// Adaptive histogram refresh: when graph-level feedback hits keep
    /// showing large errors (`hist_refresh_error_factor`) attributable
    /// to exactly one base-table predicate column, rebuild just that
    /// column's histogram (incremental MaxDiff) from live data and
    /// drop the per-fingerprint corrections it makes redundant.
    fn maybe_refresh_histograms(&self, hits: &[GraphFeedbackHit], controller: &ReoptController) {
        if !self.cfg.plan_cache_enabled || self.cfg.hist_refresh_hits == 0 {
            return;
        }
        for h in hits {
            // Only errors attributable to one column are actionable;
            // multi-column (or join-level) errors name no histogram.
            let [column] = h.columns.as_slice() else {
                continue;
            };
            let est = h.estimated_rows.max(1.0);
            let obs = h.observed_rows.max(1.0);
            let err = (obs / est).max(est / obs);
            if err < self.cfg.hist_refresh_error_factor {
                continue;
            }
            let key = (h.table.clone(), column.clone());
            let count = {
                let mut m = self.hist_errors.lock();
                let c = m.entry(key.clone()).or_insert(0);
                *c += 1;
                *c
            };
            if count < self.cfg.hist_refresh_hits {
                continue;
            }
            self.hist_errors.lock().remove(&key);
            if self
                .catalog
                .analyze_column(
                    &self.storage,
                    &h.table,
                    column,
                    HistogramKind::MaxDiff,
                    self.cfg.histogram_buckets,
                    self.cfg.reservoir_size,
                    0xA11A,
                )
                .is_ok()
            {
                // The rebuilt histogram supersedes the stored
                // corrections for this table; keeping them would
                // double-apply the same evidence.
                self.feedback.remove_for_table(&h.table);
                mq_obs::emit(|| ObsEvent::HistogramRefresh {
                    table: h.table.clone(),
                    column: column.clone(),
                    error_factor: err,
                });
                controller.note(format!(
                    "stats: refreshed histogram {}.{} (error factor {:.1})",
                    h.table, column, err
                ));
            }
        }
    }

    /// Probe the optimized plan top-down against the materialization
    /// cache and splice a [`PhysOp::CachedScan`] over every largest
    /// matching sub-tree. Pins pushed onto `pins` must outlive the
    /// execution of the (possibly re-optimized) plan.
    fn probe_cache(
        &self,
        plan: &mut PhysPlan,
        pins: &mut Vec<PinGuard>,
        controller: &ReoptController,
    ) {
        let mut probed = 0u64;
        let spliced = self.probe_rec(plan, pins, &mut probed, controller);
        if spliced > 0 {
            plan.assign_ids();
        } else if probed > 0 {
            self.cache.record_miss();
            mq_obs::emit(|| ObsEvent::CacheMiss { probed });
            controller.note(format!("cache: miss ({probed} sub-trees probed)"));
        }
    }

    fn probe_rec(
        &self,
        plan: &mut PhysPlan,
        pins: &mut Vec<PinGuard>,
        probed: &mut u64,
        controller: &ReoptController,
    ) -> u32 {
        // Every node is probe-worthy — a cut can sit directly above a
        // scan, so even leaf fingerprints may be cached. Spliced nodes
        // themselves are the one exception.
        if !matches!(plan.op, PhysOp::CachedScan { .. }) {
            *probed += 1;
            let fp = subplan_fingerprint(plan);
            if let Some(hit) = self.cache.lookup(fp) {
                let fresh = hit
                    .entry
                    .deps
                    .iter()
                    .all(|(t, v)| self.catalog.data_version(t) == Some(*v));
                if !fresh {
                    // A dep was written since promotion: retire the
                    // entry now (dead-until-unpinned if shared).
                    drop(hit.guard);
                    if let Some(e) = self.cache.invalidate(fp) {
                        self.retire_cache_entry(e);
                    }
                } else if let Some(mapping) = schema_permutation(&hit.entry.schema, &plan.schema) {
                    let e = &hit.entry;
                    mq_obs::emit(|| ObsEvent::CacheHit {
                        fingerprint: fp,
                        table: e.table.clone(),
                        rows: e.rows,
                        saved_ms: e.build_cost_ms,
                        saved_bytes: e.bytes,
                    });
                    controller.note(format!(
                        "cache: hit {} ({} rows, ~{:.1} ms saved, fp {:016x})",
                        e.table, e.rows, e.build_cost_ms, fp
                    ));
                    let mut node = PhysPlan::new(
                        PhysOp::CachedScan {
                            spec: ScanSpec {
                                table: e.table.clone(),
                                file: e.file,
                                pages: e.pages,
                                rows: e.rows,
                            },
                            fingerprint: fp,
                        },
                        vec![],
                        e.schema.clone(),
                    );
                    node.annot.est_rows = e.rows as f64;
                    node.annot.est_row_bytes = if e.rows > 0 {
                        e.bytes as f64 / e.rows as f64
                    } else {
                        0.0
                    };
                    // The entry stores rows in *its* column order; a
                    // probed sub-tree produced by the opposite join
                    // orientation wants a permutation of it, which a
                    // projection restores.
                    if mapping.iter().enumerate().any(|(i, &s)| i != s) {
                        let exprs = plan
                            .schema
                            .fields()
                            .iter()
                            .zip(&mapping)
                            .map(|(f, &src)| {
                                (
                                    mq_expr::Expr::BoundColumn {
                                        index: src,
                                        name: f.qualified_name().into(),
                                    },
                                    f.qualified_name(),
                                )
                            })
                            .collect();
                        let mut proj = PhysPlan::new(
                            PhysOp::Project { exprs },
                            vec![node],
                            plan.schema.clone(),
                        );
                        proj.annot.est_rows = e.rows as f64;
                        proj.annot.est_row_bytes = proj.children[0].annot.est_row_bytes;
                        node = proj;
                    }
                    *plan = node;
                    pins.push(hit.guard);
                    return 1;
                }
                // Schema mismatch (fingerprint collision across
                // projections): treat as a plain miss.
            }
        }
        let mut spliced = 0;
        for c in &mut plan.children {
            spliced += self.probe_rec(c, pins, probed, controller);
        }
        spliced
    }

    /// Stage a fully-materialized plan-switch temp for promotion, and
    /// feed the cut's exact cardinality into the feedback store. Cuts
    /// reading another query's temp or cache table are not a pure
    /// function of base data and are skipped.
    #[allow(clippy::too_many_arguments)]
    fn stage_promotion(
        &self,
        promotions: &mut Vec<PendingPromotion>,
        sub: &PhysPlan,
        temp_name: &str,
        schema: Schema,
        rows: u64,
        pages: u64,
        bytes: u64,
    ) {
        let tables = base_tables(sub);
        if tables
            .iter()
            .any(|t| t.starts_with("tmp_reopt_") || t.starts_with("cache_"))
        {
            return;
        }
        let mut deps = Vec::with_capacity(tables.len());
        for t in tables {
            let Some(v) = self.catalog.data_version(&t) else {
                return;
            };
            deps.push((t, v));
        }
        let fp = subplan_fingerprint(sub);
        // Feedback rides along regardless of cache admission:
        // materializing the cut observed its exact output cardinality.
        self.feedback.record(fp, rows as f64, deps.clone());
        promotions.push(PendingPromotion {
            fingerprint: fp,
            temp_name: temp_name.to_string(),
            schema,
            rows,
            pages,
            bytes,
            build_cost_ms: sub.annot.est_total_time_ms,
            deps,
        });
    }

    /// Promote this query's staged temps into the cache: re-validate
    /// deps, re-register the temp's file under a `cache_*` name, then
    /// admit the entry. The catalog rename happens *before* admission
    /// (data before metadata): the only crash-window debris is an
    /// orphan cache table, which [`Engine::sweep_cache_orphans`]
    /// reclaims. Only [`MqError::Crash`] escapes; per-entry failures
    /// skip that entry.
    fn finalize_promotions(
        &self,
        env: &JobEnv,
        promotions: Vec<PendingPromotion>,
        guard: &mut CleanupGuard<'_>,
    ) -> Result<()> {
        for p in promotions {
            // A dep written mid-query makes the result already stale;
            // leave the temp to die with the guard.
            if p.deps
                .iter()
                .any(|(t, v)| self.catalog.data_version(t) != Some(*v))
            {
                continue;
            }
            let cache_name = format!("cache_q{}_{:016x}", env.query_id, p.fingerprint);
            let Ok(entry) = self.catalog.drop_table(&p.temp_name) else {
                continue;
            };
            guard.untrack(&p.temp_name);
            let stats = entry.stats.unwrap_or_else(|| TableStats {
                rows: p.rows,
                pages: p.pages,
                avg_row_bytes: if p.rows > 0 {
                    p.bytes as f64 / p.rows as f64
                } else {
                    0.0
                },
                columns: HashMap::new(),
            });
            if self
                .catalog
                .register_materialized(&cache_name, entry.file, entry.schema, stats)
                .is_err()
            {
                // Unregistered file: reclaim it rather than leak it.
                let _ = self.storage.drop_file(entry.file);
                continue;
            }
            // Chaos kill point: table registered, entry not yet
            // admitted — the promotion either completes or leaves a
            // sweepable orphan, never a dangling cache entry.
            mq_common::fault::on_segment_boundary()?;
            let bytes = p.bytes.max(1);
            let cache_entry = CacheEntry {
                fingerprint: p.fingerprint,
                table: cache_name.clone(),
                file: entry.file,
                schema: p.schema,
                rows: p.rows,
                pages: p.pages,
                bytes,
                build_cost_ms: p.build_cost_ms,
                deps: p.deps,
            };
            let build_cost_ms = cache_entry.build_cost_ms;
            let rows = p.rows;
            let fingerprint = p.fingerprint;
            let retired = self.cache.insert(cache_entry);
            if !retired.iter().any(|e| e.table == cache_name) {
                mq_obs::emit(|| ObsEvent::CachePromote {
                    fingerprint,
                    table: cache_name.clone(),
                    rows,
                    bytes,
                    build_cost_ms,
                });
            }
            for e in retired {
                self.retire_cache_entry(e);
            }
        }
        Ok(())
    }

    /// Cross-query cardinality feedback: every collector that drained
    /// its input to exhaustion observed the exact output cardinality of
    /// the sub-plan below it. Key it by canonical fingerprint so the
    /// *next* query containing that sub-plan plans with truth. Sub-
    /// plans touching temp or cache tables are skipped (not pure
    /// functions of base data).
    fn record_collector_feedback(
        &self,
        plan: &PhysPlan,
        controller: &ReoptController,
        temp_tables: &[String],
    ) {
        let observations = controller.complete_observations();
        if observations.is_empty() {
            return;
        }
        plan.walk(&mut |node| {
            if !matches!(node.op, PhysOp::StatsCollector { .. }) {
                return;
            }
            let Some(child) = node.children.first() else {
                return;
            };
            let Some(obs) = observations.iter().find(|o| o.node == node.id) else {
                return;
            };
            let tables = base_tables(child);
            if tables.iter().any(|t| {
                t.starts_with("tmp_reopt_")
                    || t.starts_with("cache_")
                    || temp_tables.iter().any(|tt| tt == t)
            }) {
                return;
            }
            let mut deps = Vec::with_capacity(tables.len());
            for t in tables {
                let Some(v) = self.catalog.data_version(&t) else {
                    return;
                };
                deps.push((t, v));
            }
            self.feedback
                .record(subplan_fingerprint(child), obs.rows as f64, deps);
        });
    }

    /// §2.2 statistics feedback: a collector that drained the complete,
    /// unfiltered output of a base-table scan observed that table's
    /// true row count and column distributions — write them back so the
    /// next query plans against healed statistics. Filtered scans and
    /// early-stopped collectors are skipped (their observations describe
    /// a subset), as are the re-optimizer's own temp tables (about to be
    /// dropped).
    fn apply_stats_feedback(
        &self,
        plan: &PhysPlan,
        controller: &ReoptController,
        temp_tables: &[String],
    ) {
        let observations = controller.complete_observations();
        if observations.is_empty() {
            return;
        }
        plan.walk(&mut |node| {
            if !matches!(node.op, mq_plan::PhysOp::StatsCollector { .. }) {
                return;
            }
            let Some(child) = node.children.first() else {
                return;
            };
            let mq_plan::PhysOp::SeqScan { spec, filter: None } = &child.op else {
                return;
            };
            if temp_tables.iter().any(|t| t == &spec.table) {
                return;
            }
            let Some(obs) = observations.iter().find(|o| o.node == node.id) else {
                return;
            };
            // Collector specs use qualified names; catalog column stats
            // are keyed by bare name.
            let columns = obs
                .columns
                .iter()
                .map(|(k, v)| {
                    let bare = k.rsplit('.').next().unwrap_or(k).to_string();
                    (bare, v.clone())
                })
                .collect();
            let pages = self
                .storage
                .file_pages(spec.file)
                .unwrap_or(spec.pages as usize) as u64;
            let _ = self.catalog.apply_observed(
                &spec.table,
                obs.rows,
                pages,
                obs.avg_row_bytes,
                &columns,
            );
        });
    }

    /// Recover a crashed query by id: validate its checkpoint manifest
    /// against the surviving artifacts, sweep what did not survive
    /// intact, rebuild the remainder query over the salvaged temp
    /// tables (re-entering the optimizer with their exact checkpoint
    /// statistics) and resume execution to completion.
    ///
    /// Uses a default environment (engine clock, no interrupts); the
    /// runtime supplies its own via [`Engine::recover_with`].
    pub fn recover(&self, query_id: u64) -> Result<RecoveryReport> {
        let mut env = self.default_env();
        env.query_id = query_id;
        self.recover_with(query_id, env)
    }

    /// [`Engine::recover`] under an explicit job environment. The
    /// env's `temp_prefix` is overwritten with the recovery
    /// generation's prefix (`tmp_reopt_q<id>r<gen>_`), which can never
    /// collide with the crashed generation's names.
    ///
    /// Validation and sweep are charged to `env.clock` and run under
    /// the env's fault scope, so an injected crash *during recovery*
    /// propagates out with the manifest intact — the caller simply
    /// calls recover again. A crash during the resumed execution rolls
    /// the manifest generation instead; already-salvaged tables join
    /// the protected set and survive the next recovery's sweep.
    pub fn recover_with(&self, query_id: u64, mut env: JobEnv) -> Result<RecoveryReport> {
        let manifest = self.manifests.get(query_id).ok_or_else(|| {
            MqError::NotFound(format!("no open checkpoint manifest for query {query_id}"))
        })?;
        let generation = manifest.generation + 1;
        env.query_id = query_id;
        env.temp_prefix = format!("tmp_reopt_q{query_id}r{generation}_");
        let clock = env.clock.clone();
        let t0 = clock.snapshot();

        let salvage = {
            let _scope = env.clock.enter_scope();
            let _fault_scope = env.fault.as_ref().map(FaultInjector::enter_scope);
            let _obs_scope = env
                .obs
                .as_ref()
                .filter(|o| o.is_active())
                .map(mq_obs::Obs::enter_scope);
            mq_obs::emit(|| ObsEvent::RecoveryStarted {
                query_id,
                generation,
                manifest_records: manifest.records.len() as u64,
            });
            self.salvage_and_sweep(&manifest)
        };
        let salvage = salvage?;

        // Resume: re-enter the normal execution path with the last
        // valid remainder plan. `run_with` rolls the manifest over to
        // the new generation and keeps checkpointing, so recovery is
        // itself crash-safe.
        let result = self.run_with(&salvage.resume_plan, manifest.mode, env);
        match result {
            Ok(outcome) => {
                // The salvaged inputs (this and earlier generations)
                // are consumed; the resume's own temps and manifest
                // were already handled by `run_with`.
                for name in salvage.salvaged_tables.iter().chain(&manifest.protected) {
                    self.drop_temp(name);
                }
                Ok(RecoveryReport {
                    outcome,
                    generation,
                    segments_salvaged: salvage.salvaged,
                    validated_rows: salvage.validated_rows,
                    swept_tables: salvage.swept_tables,
                    swept_files: salvage.swept_files,
                    recovery_ms: clock.snapshot().since(&t0).time_ms(&self.cfg),
                })
            }
            // Crashed again: everything stays for the next recovery.
            Err(e @ MqError::Crash(_)) => Err(e),
            Err(e) => {
                // Permanent failure: the query is dead, so the salvaged
                // capital is reclaimed too (the resume's guard cleaned
                // its own state and removed the manifest).
                for name in salvage.salvaged_tables.iter().chain(&manifest.protected) {
                    self.drop_temp(name);
                }
                Err(e)
            }
        }
    }

    /// Validate a crashed generation's checkpoint records in order and
    /// sweep everything of that generation that did not validate.
    ///
    /// A record is valid iff its temp table is still catalog-registered,
    /// the heap file holds exactly the recorded row count, a charged
    /// re-scan reproduces the recorded content fingerprint, and the
    /// stored remainder plan matches its recorded hash. Validation
    /// stops at the first failure — later segments' remainder plans
    /// reference the failed table, so only the longest valid prefix is
    /// salvageable.
    fn salvage_and_sweep(&self, manifest: &QueryManifest) -> Result<Salvage> {
        let mut salvaged = 0usize;
        let mut validated_rows = 0u64;
        'validate: for (i, rec) in manifest.records.iter().enumerate() {
            if plan_hash(&manifest.remainders[i]) != rec.remainder_hash {
                break;
            }
            let Ok(entry) = self.catalog.table(&rec.temp_table) else {
                break;
            };
            match self.storage.file_rows(entry.file) {
                Ok(rows) if rows == rec.rows => {}
                _ => break,
            }
            let mut fingerprint = 0u64;
            match self.storage.scan_file(entry.file) {
                Ok(scan) => {
                    for item in scan {
                        let Ok((_, row)) = item else { break 'validate };
                        fingerprint = fingerprint.wrapping_add(mq_exec::row_fingerprint(&row));
                        validated_rows += 1;
                    }
                }
                Err(_) => break,
            }
            if fingerprint != rec.fingerprint {
                break;
            }
            salvaged = i + 1;
        }
        let salvaged_tables: Vec<String> = manifest.records[..salvaged]
            .iter()
            .map(|r| r.temp_table.clone())
            .collect();
        mq_obs::emit(|| ObsEvent::SegmentsSalvaged {
            query_id: manifest.query_id,
            salvaged: salvaged as u64,
            validated_rows,
        });

        // Sweep the crashed generation's leftovers: every catalog
        // entry under its temp prefix that is not a salvaged record
        // (placeholders, invalidated checkpoints), then every scratch
        // file still carrying its tag (partial materializations,
        // abandoned spills). Protected tables belong to *earlier*
        // generations — different prefix — and are untouched by
        // construction.
        let mut swept_tables = 0u64;
        for name in self.catalog.table_names() {
            if !name.starts_with(&manifest.temp_prefix) {
                continue;
            }
            if salvaged_tables.iter().any(|t| t == &name) {
                continue;
            }
            self.drop_temp(&name);
            swept_tables += 1;
        }
        let mut swept_files = 0u64;
        for file in self.storage.files_with_tag(&manifest.temp_prefix) {
            if self.storage.drop_file(file).is_ok() {
                swept_files += 1;
            }
        }
        mq_obs::emit(|| ObsEvent::OrphansSwept {
            query_id: manifest.query_id,
            tables: swept_tables,
            files: swept_files,
        });

        let resume_plan = if salvaged > 0 {
            manifest.remainders[salvaged - 1].clone()
        } else {
            manifest.original.clone()
        };
        Ok(Salvage {
            salvaged: salvaged as u32,
            validated_rows,
            swept_tables,
            swept_files,
            resume_plan,
            salvaged_tables,
        })
    }

    /// Reclaim stale `tmp_reopt_*` leftovers: temp tables and tagged
    /// scratch files whose owning query has no open manifest — crash
    /// debris nobody will ever recover. Queries in flight or awaiting
    /// recovery keep an open manifest, so their state is never touched.
    /// Runs at engine startup and on demand; swept objects are counted
    /// on [`AuditReport::stale_swept`]. Returns (tables, files) swept.
    pub fn sweep_stale_temps(&self) -> (u64, u64) {
        let open: std::collections::HashSet<u64> =
            self.manifests.open_queries().into_iter().collect();
        let mut tables = 0u64;
        for name in self.catalog.table_names() {
            let Some(owner) = temp_owner(&name) else {
                continue;
            };
            if open.contains(&owner) {
                continue;
            }
            self.drop_temp(&name);
            tables += 1;
        }
        let mut files = 0u64;
        for (file, tag) in self.storage.tagged_files("tmp_reopt_") {
            let Some(owner) = temp_owner(&tag) else {
                continue;
            };
            if open.contains(&owner) {
                continue;
            }
            if self.storage.drop_file(file).is_ok() {
                files += 1;
            }
        }
        self.stale_swept
            .fetch_add(tables + files, Ordering::Relaxed);
        (tables, files)
    }

    /// Drop one re-optimizer temp table and its heap file. Failures are
    /// *counted and logged*, never swallowed: a survivor shows up in
    /// [`Engine::audit`] (as a leaked temp table or orphan pages) and
    /// in [`Engine::cleanup_failure_count`].
    fn drop_temp(&self, name: &str) {
        match self.catalog.drop_table(name) {
            Ok(entry) => {
                if let Err(e) = self.storage.drop_file(entry.file) {
                    self.cleanup_failures.fetch_add(1, Ordering::Relaxed);
                    eprintln!("cleanup: failed to drop file of temp table {name}: {e}");
                }
            }
            Err(e) => {
                self.cleanup_failures.fetch_add(1, Ordering::Relaxed);
                eprintln!("cleanup: failed to drop temp table {name}: {e}");
            }
        }
    }
}
