//! End-to-end engine tests: the full §2.6 loop, exercised on scenarios
//! engineered to reproduce the paper's two repair mechanisms.

use mq_common::{DataType, EngineConfig, Row, Value};
use mq_expr::{cmp, col, lit, CmpOp};
use mq_plan::{AggExpr, AggFunc, LogicalPlan, PhysOp};
use mq_stats::HistogramKind;

use crate::engine::Engine;
use crate::ReoptMode;

/// The classic stale-statistics setup: `fact` is analyzed early, then
/// grows 10× with a *different* value distribution, so the optimizer
/// badly underestimates the filtered cardinality. A big indexed
/// dimension makes the (estimate-driven) indexed nested-loops choice
/// catastrophic at the true cardinality — the exact sub-optimality of
/// Figure 4.
fn stale_fact_engine() -> Engine {
    stale_fact_engine_with(EngineConfig::default())
}

fn stale_fact_engine_with(cfg: EngineConfig) -> Engine {
    let engine = Engine::new(cfg).unwrap();
    let cat = engine.catalog();
    let st = engine.storage();

    cat.create_table(
        st,
        "fact",
        vec![
            ("fk1", DataType::Int),
            ("fk2", DataType::Int),
            ("v", DataType::Int),
        ],
    )
    .unwrap();
    cat.create_table(
        st,
        "dim1",
        vec![("pk", DataType::Int), ("x", DataType::Int)],
    )
    .unwrap();
    cat.create_table(
        st,
        "bigdim",
        vec![("pk", DataType::Int), ("payload", DataType::Int)],
    )
    .unwrap();

    // Initial load: v uniform over 0..499 (filter v < 1 ⇒ est. ~0.5%).
    for i in 0..20_000i64 {
        cat.insert_row(
            st,
            "fact",
            Row::new(vec![
                Value::Int(i % 100),
                Value::Int((i * 7919) % 60_000),
                Value::Int(i % 500),
            ]),
        )
        .unwrap();
    }
    // dim1's *filtered* estimate stays larger than the estimated
    // filtered fact, so the optimizer accumulates fact first — putting
    // the collector on the mis-estimated stream (the build side), as
    // in the paper's Fig. 2 — while the dim1 join is reductive enough
    // that the indexed bigdim join comes last.
    for i in 0..600i64 {
        cat.insert_row(st, "dim1", Row::new(vec![Value::Int(i), Value::Int(i)]))
            .unwrap();
    }
    // bigdim is loaded in truly shuffled pk order: the pk index is
    // unclustered, so random probes pay real I/O.
    let mut pks: Vec<i64> = (0..60_000).collect();
    mq_common::DetRng::new(0xB16D).shuffle(&mut pks);
    for (i, pk) in pks.into_iter().enumerate() {
        cat.insert_row(
            st,
            "bigdim",
            Row::new(vec![Value::Int(pk), Value::Int(i as i64 % 7)]),
        )
        .unwrap();
    }
    for t in ["fact", "dim1", "bigdim"] {
        cat.analyze(st, t, HistogramKind::MaxDiff, 16, 512, 11)
            .unwrap();
    }
    cat.create_index(st, "bigdim", "pk").unwrap();

    // Post-ANALYZE distribution shift: 2000 new rows, every one
    // satisfying v < 1. Page-count growth scaling cannot see this —
    // the *histogram* is what went stale, exactly footnote 2's world.
    for i in 0..2000i64 {
        cat.insert_row(
            st,
            "fact",
            Row::new(vec![
                Value::Int(i % 100),
                Value::Int((i * 6133) % 60_000),
                Value::Int(0),
            ]),
        )
        .unwrap();
    }
    engine
}

fn stale_fact_query() -> LogicalPlan {
    LogicalPlan::scan_filtered("fact", cmp(CmpOp::Lt, col("fact.v"), lit(1i64)))
        .join(
            LogicalPlan::scan_filtered("dim1", cmp(CmpOp::Lt, col("dim1.x"), lit(40i64))),
            vec![("fact.fk1", "dim1.pk")],
        )
        .join(LogicalPlan::scan("bigdim"), vec![("fact.fk2", "bigdim.pk")])
}

#[test]
fn all_modes_agree_on_results() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let mut sorted: Vec<Vec<String>> = Vec::new();
    for mode in [
        ReoptMode::Off,
        ReoptMode::MemoryOnly,
        ReoptMode::PlanOnly,
        ReoptMode::Full,
    ] {
        let outcome = engine.run(&q, mode).unwrap();
        let mut rows: Vec<String> = outcome.rows.iter().map(|r| r.to_string()).collect();
        rows.sort();
        sorted.push(rows);
    }
    assert_eq!(sorted[0], sorted[1], "MemoryOnly must not change results");
    assert_eq!(sorted[0], sorted[2], "PlanOnly must not change results");
    assert_eq!(sorted[0], sorted[3], "Full must not change results");
    assert!(!sorted[0].is_empty());
}

#[test]
fn stale_stats_trigger_plan_switch_and_win() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();

    let off = engine.run(&q, ReoptMode::Off).unwrap();
    let full = engine.run(&q, ReoptMode::Full).unwrap();

    assert!(full.collector_reports > 0, "collectors must report");
    assert!(
        full.plan_switches >= 1,
        "expected a plan switch; events:\n{}",
        full.events.join("\n")
    );
    // The re-optimized execution must beat the stale-planned one by a
    // wide margin (the INL join at true cardinality is catastrophic).
    assert!(
        full.time_ms < off.time_ms * 0.8,
        "full {:.0}ms vs off {:.0}ms; events:\n{}",
        full.time_ms,
        off.time_ms,
        full.events.join("\n")
    );
    // The final plan should no longer use the indexed join.
    let mut has_inl = false;
    full.final_plan.walk(&mut |n| {
        if matches!(n.op, PhysOp::IndexNLJoin { .. }) {
            has_inl = true;
        }
    });
    assert!(!has_inl, "final plan:\n{}", full.final_plan);
}

#[test]
fn off_mode_has_no_monitoring() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let off = engine.run(&q, ReoptMode::Off).unwrap();
    assert_eq!(off.collector_reports, 0);
    assert_eq!(off.plan_switches, 0);
    assert_eq!(off.memory_reallocs, 0);
    let mut collectors = 0;
    off.final_plan.walk(&mut |n| {
        if matches!(n.op, PhysOp::StatsCollector { .. }) {
            collectors += 1;
        }
    });
    assert_eq!(collectors, 0, "Off mode must not instrument the plan");
}

#[test]
fn memory_only_never_switches_plans() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let outcome = engine.run(&q, ReoptMode::MemoryOnly).unwrap();
    assert_eq!(outcome.plan_switches, 0);
}

/// Figure 3 / §2.3: the optimizer *under*-estimates a correlated
/// filter 4×, so the second hash join is granted a quarter of the
/// memory it needs and spills. The collector on the filter reveals the
/// truth when the first join's build completes; re-allocation re-sizes
/// the unstarted join into the unused budget and the spill disappears.
#[test]
fn memory_realloc_avoids_spill() {
    let cfg = EngineConfig {
        query_memory_bytes: 256 * 1024,
        buffer_pool_pages: 32,
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg).unwrap();
    let cat = engine.catalog();
    let st = engine.storage();

    cat.create_table(
        st,
        "r",
        vec![
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("k", DataType::Int),
        ],
    )
    .unwrap();
    cat.create_table(st, "s", vec![("k", DataType::Int), ("m", DataType::Int)])
        .unwrap();
    cat.create_table(st, "t", vec![("m", DataType::Int), ("z", DataType::Int)])
        .unwrap();
    // a, b, c perfectly correlated: the three-way conjunction keeps
    // 50% of r, but independence predicts 12.5%.
    for i in 0..4000i64 {
        let a = i % 1000;
        cat.insert_row(
            st,
            "r",
            Row::new(vec![
                Value::Int(a),
                Value::Int(a),
                Value::Int(a),
                Value::Int(i % 2000),
            ]),
        )
        .unwrap();
    }
    for i in 0..1200i64 {
        cat.insert_row(st, "s", Row::new(vec![Value::Int(i), Value::Int(i % 50)]))
            .unwrap();
    }
    for i in 0..50i64 {
        cat.insert_row(st, "t", Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
            .unwrap();
    }
    for name in ["r", "s", "t"] {
        cat.analyze(st, name, HistogramKind::MaxDiff, 16, 512, 5)
            .unwrap();
    }

    let q = LogicalPlan::scan_filtered(
        "r",
        mq_expr::and(vec![
            cmp(CmpOp::Lt, col("r.a"), lit(500i64)),
            cmp(CmpOp::Lt, col("r.b"), lit(500i64)),
            cmp(CmpOp::Lt, col("r.c"), lit(500i64)),
        ]),
    )
    .join(LogicalPlan::scan("s"), vec![("r.k", "s.k")])
    .join(LogicalPlan::scan("t"), vec![("s.m", "t.m")])
    .aggregate(
        vec!["t.z"],
        vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
        }],
    );

    let off = engine.run(&q, ReoptMode::Off).unwrap();
    let mem = engine.run(&q, ReoptMode::MemoryOnly).unwrap();
    assert_eq!(mem.plan_switches, 0);
    // Results identical.
    let key = |o: &crate::engine::QueryOutcome| {
        let mut v: Vec<String> = o.rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };
    assert_eq!(key(&off), key(&mem));
    // A grant was raised mid-query…
    assert!(
        mem.memory_reallocs >= 1,
        "events:\n{}",
        mem.events.join("\n")
    );
    assert!(
        mem.events.iter().any(|e| e.starts_with("memory:")),
        "events:\n{}",
        mem.events.join("\n")
    );
    // …and the spill it prevents is visible in the physical writes.
    assert!(
        mem.cost.pages_written < off.cost.pages_written,
        "mem writes {} vs off writes {}; events:\n{}",
        mem.cost.pages_written,
        off.cost.pages_written,
        mem.events.join("\n")
    );
}

#[test]
fn simple_queries_unaffected() {
    let engine = stale_fact_engine();
    // Zero-join query: collectors may exist but re-optimization never
    // fires, and results match.
    let q = LogicalPlan::scan_filtered("fact", cmp(CmpOp::Lt, col("fact.v"), lit(2i64))).aggregate(
        vec![],
        vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
        }],
    );
    let off = engine.run(&q, ReoptMode::Off).unwrap();
    let full = engine.run(&q, ReoptMode::Full).unwrap();
    assert_eq!(off.rows, full.rows);
    assert_eq!(full.plan_switches, 0);
    // Overhead must respect μ within rounding: the full run can cost at
    // most a few percent more.
    assert!(
        full.time_ms <= off.time_ms * (1.0 + engine.config().mu + 0.05),
        "full {:.1} vs off {:.1}",
        full.time_ms,
        off.time_ms
    );
}

#[test]
fn events_are_informative() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let full = engine.run(&q, ReoptMode::Full).unwrap();
    let log = full.events.join("\n");
    assert!(log.contains("collector"), "log:\n{log}");
    if full.plan_switches > 0 {
        assert!(log.contains("ACCEPT"), "log:\n{log}");
    }
}

/// §1's object-relational motivation: a UDF predicate the optimizer
/// prices at its blind default (10%) actually keeps 90% of the rows.
/// The collector reveals it; re-allocation re-sizes the downstream
/// joins and removes their spill passes.
#[test]
fn udf_blindness_repaired_by_reallocation() {
    let cfg = EngineConfig {
        query_memory_bytes: 1024 * 1024,
        buffer_pool_pages: 32,
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg).unwrap();
    let cat = engine.catalog();
    let st = engine.storage();

    cat.create_table(
        st,
        "parcels",
        vec![
            ("id", DataType::Int),
            ("region_code", DataType::Int),
            ("area", DataType::Float),
        ],
    )
    .unwrap();
    cat.create_table(
        st,
        "regions",
        vec![("code", DataType::Int), ("zone", DataType::Int)],
    )
    .unwrap();
    cat.create_table(
        st,
        "zones",
        vec![("zone", DataType::Int), ("name", DataType::Str)],
    )
    .unwrap();
    for i in 0..6000i64 {
        cat.insert_row(
            st,
            "parcels",
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 800),
                Value::Float((i % 977) as f64),
            ]),
        )
        .unwrap();
    }
    for i in 0..800i64 {
        cat.insert_row(
            st,
            "regions",
            Row::new(vec![Value::Int(i), Value::Int(i % 40)]),
        )
        .unwrap();
    }
    for i in 0..40i64 {
        cat.insert_row(
            st,
            "zones",
            Row::new(vec![Value::Int(i), Value::str(format!("zone-{i}"))]),
        )
        .unwrap();
    }
    for t in ["parcels", "regions", "zones"] {
        cat.analyze(st, t, HistogramKind::MaxDiff, 16, 512, 3)
            .unwrap();
    }

    let udf_filter = mq_expr::Expr::UdfPred {
        name: "inside_survey_area".into(),
        arg: Box::new(col("parcels.area")),
        udf: mq_expr::Udf::HashFraction {
            keep_fraction: 0.9,
            salt: 42,
        },
    };
    let q = LogicalPlan::scan_filtered("parcels", udf_filter)
        .join(
            LogicalPlan::scan("regions"),
            vec![("parcels.region_code", "regions.code")],
        )
        .join(
            LogicalPlan::scan("zones"),
            vec![("regions.zone", "zones.zone")],
        )
        .aggregate(
            vec!["zones.name"],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "parcel_count".into(),
            }],
        );

    let off = engine.run(&q, ReoptMode::Off).unwrap();
    let full = engine.run(&q, ReoptMode::Full).unwrap();
    assert_eq!(off.rows.len(), full.rows.len());
    assert!(
        full.memory_reallocs >= 1,
        "events:\n{}",
        full.events.join("\n")
    );
    assert!(
        full.cost.pages_written < off.cost.pages_written,
        "full writes {} vs off writes {}",
        full.cost.pages_written,
        off.cost.pages_written
    );
    assert!(
        full.time_ms < off.time_ms * 0.8,
        "full {:.0}ms vs off {:.0}ms",
        full.time_ms,
        off.time_ms
    );
}

/// Temp tables created by plan switches are unregistered and their
/// files freed once the query finishes.
#[test]
fn switch_temp_tables_are_cleaned_up() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let before_tables = engine.catalog().table_names();
    let full = engine.run(&q, ReoptMode::Full).unwrap();
    assert!(full.plan_switches >= 1, "scenario must switch");
    let after_tables = engine.catalog().table_names();
    assert_eq!(before_tables, after_tables, "temp tables must be dropped");
    assert!(
        !after_tables.iter().any(|t| t.starts_with("tmp_reopt")),
        "{after_tables:?}"
    );
}

/// A budget too small for even the minimum demands is a clean error,
/// not a panic or a wrong answer.
#[test]
fn impossible_budget_is_a_clean_error() {
    let mut cfg = EngineConfig::default();
    cfg.query_memory_bytes = 4 * cfg.page_size; // the legal minimum
    let engine = Engine::new(cfg).unwrap();
    let cat = engine.catalog();
    let st = engine.storage();
    cat.create_table(st, "big", vec![("k", DataType::Int), ("v", DataType::Int)])
        .unwrap();
    for i in 0..20_000i64 {
        cat.insert_row(
            st,
            "big",
            Row::new(vec![Value::Int(i), Value::Int(i % 100)]),
        )
        .unwrap();
    }
    cat.analyze(st, "big", HistogramKind::MaxDiff, 16, 512, 1)
        .unwrap();
    let q = LogicalPlan::scan("big").join(LogicalPlan::scan("big2"), vec![("big.k", "big2.k")]);
    // big2 doesn't exist → NotFound, clean.
    assert!(engine.run(&q, ReoptMode::Full).is_err());
    // Self-join-free giant hash join under a 4-page budget → OOM or a
    // successful (heavily spilling) run, but never a panic.
    let q = LogicalPlan::scan("big").aggregate(
        vec!["big.v"],
        vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
        }],
    );
    let result = engine.run(&q, ReoptMode::Full);
    match result {
        Ok(out) => assert_eq!(out.rows.len(), 100),
        Err(e) => assert_eq!(e.kind(), "oom"),
    }
}

/// Mode separation: PlanOnly never emits `memory:` events; MemoryOnly
/// never switches.
#[test]
fn modes_are_cleanly_separated() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let plan_only = engine.run(&q, ReoptMode::PlanOnly).unwrap();
    assert!(
        !plan_only.events.iter().any(|e| e.starts_with("memory:")),
        "PlanOnly must not re-allocate: {:?}",
        plan_only.events
    );
    assert_eq!(plan_only.memory_reallocs, 0);
    let mem_only = engine.run(&q, ReoptMode::MemoryOnly).unwrap();
    assert_eq!(mem_only.plan_switches, 0);
    assert!(
        !mem_only.events.iter().any(|e| e.contains("ACCEPT")),
        "MemoryOnly must not switch: {:?}",
        mem_only.events
    );
}

/// Statistics feedback (§2.2): after a query whose collector drained an
/// unfiltered stale table, the catalog holds that table's true row
/// count and column bounds — and only with the flag on.
#[test]
fn stats_feedback_heals_stale_catalog() {
    fn build(feedback: bool) -> Engine {
        let cfg = EngineConfig {
            stats_feedback: feedback,
            ..EngineConfig::default()
        };
        let engine = Engine::new(cfg).unwrap();
        let cat = engine.catalog();
        let st = engine.storage();
        cat.create_table(st, "r", vec![("k", DataType::Int), ("w", DataType::Int)])
            .unwrap();
        cat.create_table(st, "s", vec![("k", DataType::Int), ("v", DataType::Int)])
            .unwrap();
        // r analyzed at 200 rows, then grows 10×.
        for i in 0..200i64 {
            cat.insert_row(st, "r", Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        cat.analyze(st, "r", HistogramKind::MaxDiff, 16, 512, 3)
            .unwrap();
        for i in 200..2000i64 {
            cat.insert_row(st, "r", Row::new(vec![Value::Int(i), Value::Int(i % 5)]))
                .unwrap();
        }
        // s is fresh.
        for i in 0..2000i64 {
            cat.insert_row(st, "s", Row::new(vec![Value::Int(i), Value::Int(i % 9)]))
                .unwrap();
        }
        cat.analyze(st, "s", HistogramKind::MaxDiff, 16, 512, 4)
            .unwrap();
        engine
    }
    let q = LogicalPlan::scan("r").join(LogicalPlan::scan("s"), vec![("r.k", "s.k")]);

    // Flag off: the catalog stays stale after the query.
    let engine = build(false);
    engine.run(&q, ReoptMode::Full).unwrap();
    assert_eq!(
        engine.catalog().table("r").unwrap().stats.unwrap().rows,
        200,
        "feedback must be opt-in"
    );

    // Flag on: the stale table is healed to its true cardinality.
    let engine = build(true);
    let out = engine.run(&q, ReoptMode::Full).unwrap();
    assert_eq!(out.rows.len(), 2000, "join result sanity");
    let healed = engine.catalog().table("r").unwrap();
    let stats = healed.stats.unwrap();
    assert_eq!(
        stats.rows,
        2000,
        "exact observed cardinality written back; events:\n{}",
        out.events.join("\n")
    );
    // Observed columns carry fresh bounds (the stale max was 199).
    if let Some(k) = stats.columns.get("k") {
        if let Some(Value::Int(max)) = k.max {
            assert_eq!(max, 1999, "column max healed");
        }
    }
    // The staleness counter is deliberately untouched: unobserved
    // columns may still carry stale histograms.
    assert_eq!(healed.inserts_since_analyze, 1800);

    // The fresh table's stats are also overwritten but identical in
    // effect: still exact.
    assert_eq!(
        engine.catalog().table("s").unwrap().stats.unwrap().rows,
        2000
    );

    // And the *next* query plans against the healed numbers: the scan
    // of r is now estimated at its true cardinality.
    let second = engine.run(&q, ReoptMode::Off).unwrap();
    let mut scan_est = None;
    second.final_plan.walk(&mut |n| {
        if let mq_plan::PhysOp::SeqScan { spec, .. } = &n.op {
            if spec.table == "r" {
                scan_est = Some(n.annot.est_rows);
            }
        }
    });
    assert_eq!(scan_est, Some(2000.0), "healed stats drive later plans");
}

/// The post-execution report must surface everything a user needs to
/// understand a re-optimization: counters, events, and the final plan.
#[test]
fn outcome_report_is_complete() {
    let engine = stale_fact_engine();
    let q = stale_fact_query();
    let full = engine.run(&q, ReoptMode::Full).unwrap();
    let report = full.report();
    assert!(report.contains("Full mode"), "{report}");
    assert!(report.contains(&format!("rows: {}", full.rows.len())));
    assert!(report.contains("plan switches: 1"), "{report}");
    assert!(report.contains("-- controller events --"));
    // Every event line appears, numbered.
    for e in &full.events {
        assert!(report.contains(e.as_str()), "missing event {e:?}");
    }
    assert!(report.contains("-- final plan"));
    assert!(report.contains("HashJoin"), "{report}");

    // A quiet run reports the absence of events rather than an empty
    // section.
    let off = engine.run(&q, ReoptMode::Off).unwrap();
    let quiet = off.report();
    assert!(quiet.contains("controller events: none"), "{quiet}");
    assert!(quiet.contains("plan switches: 0"));
}

/// Engine reconfiguration between runs (knob sweeps use this).
#[test]
fn engine_reconfiguration() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let mut cfg = engine.config().clone();
    cfg.theta2 = 0.5;
    cfg.mu = 0.01;
    engine.set_config(cfg.clone()).unwrap();
    assert_eq!(engine.config().theta2, 0.5);
    // Invalid configs are rejected and leave the engine untouched.
    let mut bad = cfg;
    bad.mu = 7.0;
    assert!(engine.set_config(bad).is_err());
    assert_eq!(engine.config().mu, 0.01);
}

/// A small engine with one table for the fault-injection tests.
fn small_engine() -> Engine {
    let engine = Engine::new(EngineConfig::default()).unwrap();
    engine
        .catalog()
        .create_table(
            engine.storage(),
            "t",
            vec![("k", DataType::Int), ("v", DataType::Int)],
        )
        .unwrap();
    for i in 0..2000i64 {
        engine
            .catalog()
            .insert_row(
                engine.storage(),
                "t",
                Row::new(vec![Value::Int(i), Value::Int(i % 17)]),
            )
            .unwrap();
    }
    engine
}

fn group_by_query() -> LogicalPlan {
    LogicalPlan::scan("t")
        .aggregate(
            vec!["t.v"],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "n".into(),
            }],
        )
        .sort(vec![("t.v", true)])
}

fn row_fingerprints(rows: &[Row]) -> Vec<String> {
    rows.iter().map(|r| format!("{r:?}")).collect()
}

#[test]
fn transient_fault_recovers_via_segment_retry() {
    use mq_common::{FaultInjector, FaultKind, FaultSite, FaultSpec};
    let engine = small_engine();
    let q = group_by_query();
    let oracle = engine.run(&q, ReoptMode::Off).unwrap().rows;

    let inj = FaultInjector::new(
        vec![FaultSpec {
            site: FaultSite::PageRead,
            kind: FaultKind::Transient,
            at: 3,
        }],
        None,
    );
    let mut env = engine.default_env();
    env.fault = Some(inj.clone());
    let out = engine
        .run_with(&q, ReoptMode::Off, env)
        .expect("transient fault must be absorbed by a segment retry");
    assert!(out.segment_retries >= 1, "expected a segment retry");
    assert_eq!(inj.fired().transient, 1, "fault must fire exactly once");
    assert_eq!(row_fingerprints(&out.rows), row_fingerprints(&oracle));
    assert!(
        out.events.iter().any(|e| e.contains("segment retry")),
        "retry must be logged: {:?}",
        out.events
    );
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}

#[test]
fn permanent_fault_fails_cleanly_without_leaks() {
    use mq_common::{FaultInjector, FaultKind, FaultSite, FaultSpec};
    let engine = small_engine();
    let q = group_by_query();

    let inj = FaultInjector::new(
        vec![FaultSpec {
            site: FaultSite::PageRead,
            kind: FaultKind::Permanent,
            at: 3,
        }],
        None,
    );
    let mut env = engine.default_env();
    env.fault = Some(inj.clone());
    let err = engine
        .run_with(&q, ReoptMode::Off, env)
        .expect_err("permanent fault must fail the query");
    assert_eq!(err.kind(), "storage");
    assert!(!err.is_transient());
    assert_eq!(inj.fired().permanent, 1);
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
    assert_eq!(engine.cleanup_failure_count(), 0);
}

#[test]
fn transient_faults_beyond_the_retry_limit_fail() {
    use mq_common::{FaultInjector, FaultKind, FaultSite, FaultSpec};
    let engine = small_engine();
    let q = group_by_query();
    let limit = engine.config().transient_retry_limit;

    // One more transient fault than the retry budget: every retry hits
    // the next scheduled fault, and the last one has no budget left.
    let specs = (0..=limit as u64)
        .map(|i| FaultSpec {
            site: FaultSite::PageRead,
            kind: FaultKind::Transient,
            at: 3 + i,
        })
        .collect();
    let inj = FaultInjector::new(specs, None);
    let mut env = engine.default_env();
    env.fault = Some(inj.clone());
    let err = engine
        .run_with(&q, ReoptMode::Off, env)
        .expect_err("retry budget exhausted");
    assert!(err.is_transient());
    assert_eq!(inj.fired().transient as u32, limit + 1);
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}

/// The retry backoff is charged to the job's simulated clock and grows
/// exponentially with the retry ordinal.
#[test]
fn segment_retries_charge_simulated_backoff() {
    use mq_common::{FaultInjector, FaultKind, FaultSite, FaultSpec};
    let engine = small_engine();
    let q = group_by_query();
    let clean = engine.run(&q, ReoptMode::Off).unwrap();

    let inj = FaultInjector::new(
        vec![FaultSpec {
            site: FaultSite::PageRead,
            kind: FaultKind::Transient,
            at: 3,
        }],
        None,
    );
    let mut env = engine.default_env();
    env.fault = Some(inj);
    let out = engine.run_with(&q, ReoptMode::Off, env).unwrap();
    // The faulted run re-ran the segment and paid at least the first
    // backoff step on top of the clean run's time.
    assert!(
        out.time_ms > clean.time_ms + engine.config().transient_retry_backoff_ms * 0.99,
        "faulted {} ms vs clean {} ms",
        out.time_ms,
        clean.time_ms
    );
}

// ---------------------------------------------------------------------
// Cross-query sub-plan cache + feedback store (mq-cache).
// ---------------------------------------------------------------------

fn cache_cfg() -> EngineConfig {
    EngineConfig {
        cache_enabled: true,
        ..EngineConfig::default()
    }
}

fn has_cached_scan(p: &mq_plan::PhysPlan) -> bool {
    matches!(p.op, PhysOp::CachedScan { .. }) || p.children.iter().any(has_cached_scan)
}

/// Column-order-insensitive row canonicalization. A cached sub-plan
/// can re-enter a later plan under the opposite join orientation, so a
/// bare-join query's *output column order* legitimately differs between
/// runs; the answer (as name→value tuples) must not.
fn canon_rows(out: &crate::engine::QueryOutcome) -> Vec<String> {
    let schema = &out.final_plan.schema;
    let mut cols: Vec<(String, usize)> = schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| (f.qualified_name(), i))
        .collect();
    cols.sort();
    let mut rows: Vec<String> = out
        .rows
        .iter()
        .map(|r| {
            cols.iter()
                .map(|(n, i)| format!("{n}={:?}", r.get(*i)))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    rows.sort();
    rows
}

/// The headline mq-cache property: a plan switch's materialized temp is
/// promoted into the cache, and a *second* query of the same family
/// reuses it — byte-identical answer, no re-optimization, and at least
/// 2× cheaper on the simulated clock.
#[test]
fn cache_promotes_and_reuses_across_queries() {
    let engine = stale_fact_engine_with(cache_cfg());
    let q = stale_fact_query();

    // Oracle: an identically-loaded engine with the cache off.
    let off = stale_fact_engine().run(&q, ReoptMode::Full).unwrap();

    let cold = engine.run(&q, ReoptMode::Full).unwrap();
    assert!(cold.plan_switches >= 1, "cold run must switch plans");
    let s = engine.cache_stats();
    assert!(s.promotions >= 1, "switch temp must be promoted: {s:?}");
    assert_eq!(s.hits, 0, "nothing to hit on the cold run");
    assert!(!has_cached_scan(&cold.final_plan));

    let warm = engine.run(&q, ReoptMode::Full).unwrap();
    let s = engine.cache_stats();
    assert!(
        s.hits >= 1,
        "warm run must reuse the cached sub-plan: {s:?}"
    );
    assert!(
        has_cached_scan(&warm.final_plan),
        "warm plan must splice a CachedScan:\n{}",
        warm.final_plan
    );
    assert_eq!(
        warm.plan_switches, 0,
        "cache + feedback must remove the need to re-optimize: {:?}",
        warm.events
    );
    assert!(
        engine.feedback().applied() >= 1,
        "feedback store must have corrected at least one estimate"
    );
    assert!(
        warm.time_ms * 2.0 <= cold.time_ms,
        "warm ({} ms) must be at least 2x cheaper than cold ({} ms)",
        warm.time_ms,
        cold.time_ms
    );

    // Same answer in all three runs (modulo join-orientation column
    // order — this query has no projection pinning one down).
    assert_eq!(canon_rows(&off), canon_rows(&cold));
    assert_eq!(canon_rows(&cold), canon_rows(&warm));

    // Clearing the cache drops every cache_* table and leaves the
    // engine spotless.
    engine.clear_cache();
    assert_eq!(engine.cache_stats().entries, 0);
    assert!(
        engine
            .catalog()
            .table_names()
            .iter()
            .all(|n| !n.starts_with("cache_")),
        "clear_cache must drop backing tables"
    );
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}

/// A write to a base table invalidates every cached sub-plan that
/// depends on it: the next run rebuilds and the answer matches a
/// cache-off engine that saw the same write.
#[test]
fn writes_invalidate_dependent_cache_entries() {
    let engine = stale_fact_engine_with(cache_cfg());
    let twin = stale_fact_engine(); // cache off, same data
    let q = stale_fact_query();

    engine.run(&q, ReoptMode::Full).unwrap();
    assert!(engine.cache_stats().promotions >= 1);

    // The new row passes every predicate, so a stale cache entry would
    // give a visibly wrong (smaller) answer.
    for e in [&engine, &twin] {
        e.catalog()
            .insert_row(
                e.storage(),
                "fact",
                Row::new(vec![Value::Int(1), Value::Int(1), Value::Int(0)]),
            )
            .unwrap();
    }
    engine.invalidate_cache_for("fact");
    let s = engine.cache_stats();
    assert!(s.invalidations >= 1, "write must invalidate: {s:?}");

    let post = engine.run(&q, ReoptMode::Full).unwrap();
    let oracle = twin.run(&q, ReoptMode::Full).unwrap();
    assert_eq!(
        canon_rows(&post),
        canon_rows(&oracle),
        "post-write answer must match a cache-off engine"
    );
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}

/// Crash injected exactly at the promotion kill point (between
/// registering the cache table and publishing the cache metadata): the
/// debris is at most an orphaned `cache_*` table — never metadata
/// pointing at missing data — and recovery + the orphan sweep restore a
/// clean audit.
#[test]
fn crash_at_promotion_is_recoverable() {
    use mq_common::{FaultInjector, FaultKind, FaultSite, FaultSpec};

    // Counting run: enumerate the query's segment boundaries. The
    // promotion kill point is the *last* boundary of a successful run.
    let counting = stale_fact_engine_with(cache_cfg());
    let q = stale_fact_query();
    let inj = FaultInjector::none();
    let mut env = counting.default_env();
    env.fault = Some(inj.clone());
    let oracle = counting.run_with(&q, ReoptMode::Full, env).unwrap();
    let boundaries = inj.ops_at(FaultSite::SegmentBoundary);
    assert!(
        counting.cache_stats().promotions >= 1,
        "counting run must promote, or there is no kill point to test"
    );
    assert!(boundaries >= 1);

    // Fresh identically-built engine, crash at that exact boundary.
    let engine = stale_fact_engine_with(cache_cfg());
    let inj = FaultInjector::new(
        vec![FaultSpec {
            site: FaultSite::SegmentBoundary,
            kind: FaultKind::Crash,
            at: boundaries,
        }],
        None,
    );
    let mut env = engine.default_env();
    let qid = env.query_id;
    env.fault = Some(inj.clone());
    let err = engine
        .run_with(&q, ReoptMode::Full, env)
        .expect_err("crash at the promotion kill point must unwind");
    assert_eq!(err.kind(), "crash");
    assert_eq!(inj.fired().crashes, 1);

    // Data-before-metadata: the cache has no entry, but the orphaned
    // backing table exists and the audit names it.
    assert_eq!(engine.cache_stats().promotions, 0);
    let audit = engine.audit();
    assert!(
        !audit.orphan_cache_tables.is_empty(),
        "audit must flag the orphaned cache table: {audit}"
    );

    engine.recover(qid).unwrap();
    let swept = engine.sweep_cache_orphans();
    assert!(swept >= 1, "sweep must reclaim the orphan");
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");

    // The engine is fully functional, and the *feedback* recorded
    // before the crash survived it: the repeated family now plans with
    // truthful cardinalities, answers correctly, and no longer needs
    // the mid-query switch the first run paid for.
    let after = engine.run(&q, ReoptMode::Full).unwrap();
    assert_eq!(canon_rows(&after), canon_rows(&oracle));
    assert_eq!(after.plan_switches, 0, "{:?}", after.events);
    assert!(engine.feedback().applied() >= 1);
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}

/// Entries survive disabling the cache (probing just stops), so
/// re-enabling starts warm; and `set_config` with a smaller budget
/// retires entries to fit.
#[test]
fn cache_survives_disable_and_respects_budget() {
    let mut engine = stale_fact_engine_with(cache_cfg());
    let q = stale_fact_query();
    engine.run(&q, ReoptMode::Full).unwrap();
    let s = engine.cache_stats();
    assert!(s.promotions >= 1 && s.entries >= 1);

    // Disable: the entry stays, but runs no longer probe.
    let mut cfg = cache_cfg();
    cfg.cache_enabled = false;
    engine.set_config(cfg).unwrap();
    assert!(engine.cache_stats().entries >= 1, "entries survive disable");
    let out = engine.run(&q, ReoptMode::Full).unwrap();
    assert!(!has_cached_scan(&out.final_plan));
    assert_eq!(engine.cache_stats().hits, 0);

    // Re-enable: starts warm.
    engine.set_config(cache_cfg()).unwrap();
    let out = engine.run(&q, ReoptMode::Full).unwrap();
    assert!(has_cached_scan(&out.final_plan), "re-enable starts warm");
    assert!(engine.cache_stats().hits >= 1);

    // Shrinking the budget below the entry's size retires it (and its
    // backing table) via cost-benefit eviction.
    let mut tiny = cache_cfg();
    tiny.cache_budget_bytes = engine.config().page_size;
    engine.set_config(tiny).unwrap();
    let s = engine.cache_stats();
    assert!(
        s.entries == 0 || s.bytes <= s.budget_bytes,
        "budget must be enforced: {s:?}"
    );
    let audit = engine.audit();
    assert!(audit.is_clean(), "{audit}");
}
