//! Engine-level snapshots: cross-restart durability for the catalog,
//! heap data, feedback store and plan-cache templates.
//!
//! A snapshot is a single file in the [`mq_storage::persist`] container
//! format (magic + per-section checksums, written atomically). The
//! sections are:
//!
//! * `meta` — the catalog epoch, so restored data versions keep
//!   monotonic meaning across the restart.
//! * `catalog` — every durable table: id, schema, index columns,
//!   ANALYZE statistics and the table's `data_version` stamp.
//! * `data:<table>` — the table's rows in heap scan order, stamped
//!   with the same `data_version` as the catalog section. Reload
//!   re-appends the rows and re-inserts index entries, which is
//!   byte-deterministic for a given page size.
//! * `feedback` — the cardinality feedback store. Each entry carries
//!   `(table, data_version)` dependencies; entries whose deps no
//!   longer match the restored catalog are dropped at load, degrading
//!   to a cache miss rather than a wrong estimate.
//! * `plancache` — one `(key, representative SQL)` pair per cached
//!   template. The physical plan is *not* serialized: restore re-runs
//!   the optimizer via [`Engine::prime_template`], off any job clock,
//!   so the format never has to version plan internals and the first
//!   warm probe after reopen is a hit with zero query-charged work.
//!
//! Ephemeral state — `tmp_reopt_*` spill tables, `cache_*`
//! materializations, the sub-plan cache, histogram error feedback —
//! is deliberately not captured: all of it regenerates and none of it
//! affects answers.

use std::collections::HashMap;
use std::path::Path;

use mq_cache::{FeedbackEntry, FeedbackExport};
use mq_catalog::stats::{ColumnStats, TableStats};
use mq_catalog::TableEntry;
use mq_common::schema::{Field, Schema};
use mq_common::value::DataType;
use mq_common::{EngineConfig, MqError, Result, TableId};
use mq_stats::{Bucket, Histogram, HistogramKind};
use mq_storage::persist::{
    parse_snapshot, read_snapshot, write_snapshot, SectionReader, SectionWriter,
};

use crate::engine::Engine;

/// What a save or restore touched, for logs and assertions.
#[derive(Debug, Clone, Default)]
pub struct SnapshotReport {
    /// Durable tables captured or restored.
    pub tables: usize,
    /// Total heap rows captured or restored.
    pub rows: u64,
    /// Feedback entries captured, or surviving restore validation.
    pub feedback_entries: usize,
    /// Feedback entries dropped at restore because a dependency's
    /// data version no longer matches the restored catalog.
    pub feedback_dropped: usize,
    /// Plan-cache templates captured or offered for priming.
    pub plan_templates: usize,
    /// Templates actually re-admitted by the optimizer at restore.
    pub templates_primed: usize,
}

fn corrupt(msg: impl Into<String>) -> MqError {
    MqError::Storage(format!("snapshot corrupt: {}", msg.into()))
}

/// Tables that must never appear in a snapshot: re-optimization spill
/// temps and cross-query cache materializations are ephemeral.
fn is_ephemeral(name: &str) -> bool {
    name.starts_with("tmp_reopt_") || name.starts_with("cache_")
}

// ---------------------------------------------------------------------
// Scalar codecs shared by save and load.
// ---------------------------------------------------------------------

fn dtype_tag(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Date => 3,
        DataType::Str => 4,
    }
}

fn dtype_from_tag(t: u8) -> Result<DataType> {
    Ok(match t {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Date,
        4 => DataType::Str,
        other => return Err(corrupt(format!("unknown dtype tag {other}"))),
    })
}

fn hist_kind_tag(k: HistogramKind) -> u8 {
    match k {
        HistogramKind::EquiWidth => 0,
        HistogramKind::EquiDepth => 1,
        HistogramKind::MaxDiff => 2,
        HistogramKind::EndBiased => 3,
        HistogramKind::VOptimal => 4,
    }
}

fn hist_kind_from_tag(t: u8) -> Result<HistogramKind> {
    Ok(match t {
        0 => HistogramKind::EquiWidth,
        1 => HistogramKind::EquiDepth,
        2 => HistogramKind::MaxDiff,
        3 => HistogramKind::EndBiased,
        4 => HistogramKind::VOptimal,
        other => return Err(corrupt(format!("unknown histogram kind tag {other}"))),
    })
}

fn write_histogram(w: &mut SectionWriter, h: &Histogram) {
    w.u8(hist_kind_tag(h.kind()));
    w.f64(h.min());
    w.f64(h.max());
    w.f64(h.null_frac());
    w.f64(h.distinct());
    w.f64(h.weight());
    w.u32(h.buckets().len() as u32);
    for b in h.buckets() {
        w.f64(b.lo);
        w.f64(b.hi);
        w.f64(b.frac);
        w.f64(b.distinct);
    }
}

fn read_histogram(r: &mut SectionReader) -> Result<Histogram> {
    let kind = hist_kind_from_tag(r.u8()?)?;
    let min = r.f64()?;
    let max = r.f64()?;
    let null_frac = r.f64()?;
    let distinct = r.f64()?;
    let weight = r.f64()?;
    let n = r.u32()? as usize;
    let mut buckets = Vec::with_capacity(n);
    for _ in 0..n {
        buckets.push(Bucket {
            lo: r.f64()?,
            hi: r.f64()?,
            frac: r.f64()?,
            distinct: r.f64()?,
        });
    }
    Ok(Histogram::from_parts(
        kind, buckets, min, max, null_frac, distinct, weight,
    ))
}

fn write_table_stats(w: &mut SectionWriter, s: &TableStats) {
    w.u64(s.rows);
    w.u64(s.pages);
    w.f64(s.avg_row_bytes);
    let mut cols: Vec<(&String, &ColumnStats)> = s.columns.iter().collect();
    cols.sort_by(|a, b| a.0.cmp(b.0));
    w.u32(cols.len() as u32);
    for (name, c) in cols {
        w.str(name);
        w.opt_value(&c.min);
        w.opt_value(&c.max);
        w.f64(c.distinct);
        w.f64(c.null_frac);
        w.f64(c.clustering);
        match c.histogram_kind {
            None => w.u8(0),
            Some(k) => {
                w.u8(1);
                w.u8(hist_kind_tag(k));
            }
        }
        match &c.histogram {
            None => w.u8(0),
            Some(h) => {
                w.u8(1);
                write_histogram(w, h);
            }
        }
    }
}

fn read_table_stats(r: &mut SectionReader) -> Result<TableStats> {
    let rows = r.u64()?;
    let pages = r.u64()?;
    let avg_row_bytes = r.f64()?;
    let ncols = r.u32()? as usize;
    let mut columns = HashMap::new();
    for _ in 0..ncols {
        let name = r.str()?;
        let min = r.opt_value()?;
        let max = r.opt_value()?;
        let distinct = r.f64()?;
        let null_frac = r.f64()?;
        let clustering = r.f64()?;
        let histogram_kind = match r.u8()? {
            0 => None,
            1 => Some(hist_kind_from_tag(r.u8()?)?),
            other => return Err(corrupt(format!("bad histogram-kind flag {other}"))),
        };
        let histogram = match r.u8()? {
            0 => None,
            1 => Some(read_histogram(r)?),
            other => return Err(corrupt(format!("bad histogram flag {other}"))),
        };
        columns.insert(
            name,
            ColumnStats {
                min,
                max,
                distinct,
                null_frac,
                histogram,
                histogram_kind,
                clustering,
            },
        );
    }
    Ok(TableStats {
        rows,
        pages,
        avg_row_bytes,
        columns,
    })
}

// ---------------------------------------------------------------------
// Save.
// ---------------------------------------------------------------------

/// Named snapshot sections in publish order.
type Sections = Vec<(String, Vec<u8>)>;

/// Assemble the engine's durable state into snapshot sections.
fn assemble(engine: &Engine) -> Result<(Sections, SnapshotReport)> {
    let catalog = engine.catalog();
    let storage = engine.storage();
    let mut report = SnapshotReport::default();

    let mut meta = SectionWriter::new();
    meta.u64(catalog.epoch());

    let mut names: Vec<String> = catalog
        .table_names()
        .into_iter()
        .filter(|n| !is_ephemeral(n))
        .collect();
    names.sort();

    let mut cat_w = SectionWriter::new();
    cat_w.u32(names.len() as u32);
    let mut data_sections: Vec<(String, Vec<u8>)> = Vec::with_capacity(names.len());
    for name in &names {
        let t = catalog.table(name)?;
        cat_w.str(&t.name);
        cat_w.u32(t.id.0);
        cat_w.u64(t.data_version);
        cat_w.u64(t.inserts_since_analyze);
        cat_w.u32(t.schema.len() as u32);
        for f in t.schema.fields() {
            match &f.qualifier {
                None => cat_w.u8(0),
                Some(q) => {
                    cat_w.u8(1);
                    cat_w.str(q);
                }
            }
            cat_w.str(&f.name);
            cat_w.u8(dtype_tag(f.dtype));
        }
        let mut index_cols: Vec<&String> = t.indexes.keys().collect();
        index_cols.sort();
        cat_w.u32(index_cols.len() as u32);
        for c in index_cols {
            cat_w.str(c);
        }
        match &t.stats {
            None => cat_w.u8(0),
            Some(s) => {
                cat_w.u8(1);
                write_table_stats(&mut cat_w, s);
            }
        }

        let mut data_w = SectionWriter::new();
        data_w.u64(t.data_version);
        let mut rows = Vec::new();
        for item in storage.scan_file(t.file)? {
            let (_, row) = item?;
            rows.push(row);
        }
        data_w.u64(rows.len() as u64);
        for row in &rows {
            data_w.row(row);
        }
        report.rows += rows.len() as u64;
        data_sections.push((format!("data:{name}"), data_w.into_bytes()));
    }
    report.tables = names.len();

    let fb = engine.feedback().export();
    let mut fb_w = SectionWriter::new();
    fb_w.u64(fb.applied);
    fb_w.u32(fb.entries.len() as u32);
    for (fp, e) in &fb.entries {
        fb_w.u64(*fp);
        fb_w.f64(e.rows);
        fb_w.u32(e.deps.len() as u32);
        for (table, ver) in &e.deps {
            fb_w.str(table);
            fb_w.u64(*ver);
        }
    }
    fb_w.u32(fb.applied_by_fp.len() as u32);
    for (fp, n) in &fb.applied_by_fp {
        fb_w.u64(*fp);
        fb_w.u64(*n);
    }
    report.feedback_entries = fb.entries.len();

    let templates = engine.plan_cache().export_sql();
    let mut pc_w = SectionWriter::new();
    pc_w.u32(templates.len() as u32);
    for (key, sql) in &templates {
        pc_w.str(key);
        pc_w.str(sql);
    }
    report.plan_templates = templates.len();

    let mut sections = vec![
        ("meta".to_string(), meta.into_bytes()),
        ("catalog".to_string(), cat_w.into_bytes()),
    ];
    sections.extend(data_sections);
    sections.push(("feedback".to_string(), fb_w.into_bytes()));
    sections.push(("plancache".to_string(), pc_w.into_bytes()));
    Ok((sections, report))
}

/// Snapshot the engine's durable state to `path`, atomically: the
/// image is staged to `<path>.tmp` and renamed over the target only
/// once fully written, so a crash mid-save (exercised through the
/// fault injector's segment-boundary save points) leaves any previous
/// snapshot at `path` loadable.
///
/// Refuses to run while queries are in flight — a snapshot taken
/// mid-query would capture spill temps and half-applied feedback.
pub fn save(engine: &Engine, path: &Path) -> Result<SnapshotReport> {
    let open = engine.manifests().open_queries();
    if !open.is_empty() {
        return Err(MqError::InvalidConfig(format!(
            "cannot snapshot while {} quer{} in flight",
            open.len(),
            if open.len() == 1 { "y is" } else { "ies are" }
        )));
    }
    let (sections, report) = assemble(engine)?;
    write_snapshot(path, &sections)?;
    Ok(report)
}

// ---------------------------------------------------------------------
// Restore.
// ---------------------------------------------------------------------

/// Restore an engine from the snapshot at `path`, using `cfg` for the
/// runtime knobs (buffer pool size, fault spec, cache policy — none of
/// those are part of the image). See [`restore_from_bytes`].
pub fn restore(cfg: EngineConfig, path: &Path) -> Result<(Engine, SnapshotReport)> {
    let sections = read_snapshot(path)?;
    restore_sections(cfg, sections)
}

/// Restore from an already-read snapshot image.
pub fn restore_from_bytes(cfg: EngineConfig, bytes: &[u8]) -> Result<(Engine, SnapshotReport)> {
    restore_sections(cfg, parse_snapshot(bytes)?)
}

fn restore_sections(
    cfg: EngineConfig,
    sections: Vec<(String, Vec<u8>)>,
) -> Result<(Engine, SnapshotReport)> {
    let mut by_name: HashMap<String, Vec<u8>> = HashMap::new();
    for (name, payload) in sections {
        if by_name.insert(name.clone(), payload).is_some() {
            return Err(corrupt(format!("duplicate section {name}")));
        }
    }
    let take = |by_name: &mut HashMap<String, Vec<u8>>, name: &str| -> Result<Vec<u8>> {
        by_name
            .remove(name)
            .ok_or_else(|| corrupt(format!("missing section {name}")))
    };

    let engine = Engine::new(cfg)?;
    let catalog = engine.catalog();
    let storage = engine.storage();
    let mut report = SnapshotReport::default();

    let meta_bytes = take(&mut by_name, "meta")?;
    let mut meta = SectionReader::new(&meta_bytes);
    let epoch = meta.u64()?;

    let cat_bytes = take(&mut by_name, "catalog")?;
    let mut cat_r = SectionReader::new(&cat_bytes);
    let ntables = cat_r.u32()? as usize;
    for _ in 0..ntables {
        let name = cat_r.str()?;
        let id = cat_r.u32()?;
        let data_version = cat_r.u64()?;
        let inserts_since_analyze = cat_r.u64()?;
        let nfields = cat_r.u32()? as usize;
        let mut fields = Vec::with_capacity(nfields);
        for _ in 0..nfields {
            let qualifier = match cat_r.u8()? {
                0 => None,
                1 => Some(cat_r.str()?),
                other => return Err(corrupt(format!("bad qualifier flag {other}"))),
            };
            let fname = cat_r.str()?;
            let dtype = dtype_from_tag(cat_r.u8()?)?;
            fields.push(match qualifier {
                Some(q) => Field::qualified(q, fname, dtype),
                None => Field::new(fname, dtype),
            });
        }
        let nindexes = cat_r.u32()? as usize;
        let mut index_cols = Vec::with_capacity(nindexes);
        for _ in 0..nindexes {
            index_cols.push(cat_r.str()?);
        }
        let stats = match cat_r.u8()? {
            0 => None,
            1 => Some(read_table_stats(&mut cat_r)?),
            other => return Err(corrupt(format!("bad stats flag {other}"))),
        };
        if is_ephemeral(&name) {
            return Err(corrupt(format!("ephemeral table {name} in snapshot")));
        }
        let schema = Schema::new_unchecked(fields);

        let data_bytes = take(&mut by_name, &format!("data:{name}"))?;
        let mut data_r = SectionReader::new(&data_bytes);
        let stamp = data_r.u64()?;
        if stamp != data_version {
            return Err(corrupt(format!(
                "data section for {name} stamped v{stamp}, catalog says v{data_version}"
            )));
        }
        let nrows = data_r.u64()?;
        let file = storage.create_file();
        let mut col_indexes = Vec::with_capacity(index_cols.len());
        for c in &index_cols {
            col_indexes.push((c.clone(), schema.index_of(c)?, storage.create_index()?));
        }
        for _ in 0..nrows {
            let row = data_r.row()?;
            if row.len() != schema.len() {
                return Err(corrupt(format!(
                    "row arity {} in {name}, schema has {}",
                    row.len(),
                    schema.len()
                )));
            }
            let rid = storage.append_row(file, &row)?;
            for (_, ci, idx) in &col_indexes {
                storage.index_insert(*idx, row.get(*ci), rid)?;
            }
        }
        if !data_r.is_exhausted() {
            return Err(corrupt(format!(
                "trailing bytes in data section for {name}"
            )));
        }
        report.rows += nrows;
        catalog.restore_table(TableEntry {
            id: TableId(id),
            name,
            schema,
            file,
            indexes: col_indexes
                .into_iter()
                .map(|(c, _, idx)| (c, idx))
                .collect(),
            stats,
            inserts_since_analyze,
            data_version,
        })?;
    }
    report.tables = ntables;
    if !cat_r.is_exhausted() {
        return Err(corrupt("trailing bytes in catalog section"));
    }
    catalog.raise_epoch(epoch);

    let fb_bytes = take(&mut by_name, "feedback")?;
    let mut fb_r = SectionReader::new(&fb_bytes);
    let applied = fb_r.u64()?;
    let nentries = fb_r.u32()? as usize;
    let mut entries = Vec::with_capacity(nentries);
    for _ in 0..nentries {
        let fp = fb_r.u64()?;
        let rows = fb_r.f64()?;
        let ndeps = fb_r.u32()? as usize;
        let mut deps = Vec::with_capacity(ndeps);
        for _ in 0..ndeps {
            deps.push((fb_r.str()?, fb_r.u64()?));
        }
        // A dependency whose data version no longer matches the
        // restored catalog means this observation describes data we do
        // not have: drop it, degrading to a feedback miss.
        let fresh = deps
            .iter()
            .all(|(t, v)| catalog.data_version(t) == Some(*v));
        if fresh {
            entries.push((fp, FeedbackEntry { rows, deps }));
        } else {
            report.feedback_dropped += 1;
        }
    }
    let nby = fb_r.u32()? as usize;
    let mut applied_by_fp = Vec::with_capacity(nby);
    for _ in 0..nby {
        applied_by_fp.push((fb_r.u64()?, fb_r.u64()?));
    }
    if !fb_r.is_exhausted() {
        return Err(corrupt("trailing bytes in feedback section"));
    }
    report.feedback_entries = entries.len();
    engine.feedback().restore(FeedbackExport {
        entries,
        applied,
        applied_by_fp,
    });

    let pc_bytes = take(&mut by_name, "plancache")?;
    let mut pc_r = SectionReader::new(&pc_bytes);
    let ntemplates = pc_r.u32()? as usize;
    for _ in 0..ntemplates {
        let _key = pc_r.str()?;
        let sql = pc_r.str()?;
        // Re-admitting runs the optimizer against the restored catalog;
        // any failure (schema drift, optimizer refusal) degrades this
        // template to a future cache miss rather than an error.
        if engine.prime_template(&sql).unwrap_or(false) {
            report.templates_primed += 1;
        }
    }
    if !pc_r.is_exhausted() {
        return Err(corrupt("trailing bytes in plancache section"));
    }
    report.plan_templates = ntemplates;

    if !by_name.is_empty() {
        let mut extras: Vec<&String> = by_name.keys().collect();
        extras.sort();
        return Err(corrupt(format!("unexpected sections: {extras:?}")));
    }
    Ok((engine, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{Row, Value};

    fn seeded_engine() -> Engine {
        let engine = Engine::new(EngineConfig::default()).unwrap();
        let catalog = engine.catalog();
        let storage = engine.storage();
        catalog
            .create_table(
                storage,
                "t",
                vec![("k", DataType::Int), ("v", DataType::Str)],
            )
            .unwrap();
        let rows: Vec<Row> = (0..50)
            .map(|i| Row::new(vec![Value::Int(i), Value::Str(format!("r{i}").into())]))
            .collect();
        catalog.insert_rows(storage, "t", rows).unwrap();
        catalog.create_index(storage, "t", "k").unwrap();
        catalog
            .analyze(storage, "t", HistogramKind::MaxDiff, 8, 128, 1)
            .unwrap();
        engine
    }

    #[test]
    fn save_restore_round_trips_catalog_and_rows() {
        let dir = std::env::temp_dir().join(format!("mq_persist_core_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.mqsnap");
        let engine = seeded_engine();
        let before = engine.catalog().table("t").unwrap();
        let report = save(&engine, &path).unwrap();
        assert_eq!(report.tables, 1);
        assert_eq!(report.rows, 50);

        let (engine2, r2) = restore(EngineConfig::default(), &path).unwrap();
        assert_eq!(r2.tables, 1);
        assert_eq!(r2.rows, 50);
        let after = engine2.catalog().table("t").unwrap();
        assert_eq!(after.data_version, before.data_version);
        assert_eq!(after.inserts_since_analyze, before.inserts_since_analyze);
        assert_eq!(after.schema.fields().len(), before.schema.fields().len());
        assert!(after.indexes.contains_key("k"));
        let s_before = before.stats.as_ref().unwrap();
        let s_after = after.stats.as_ref().unwrap();
        assert_eq!(s_after.rows, s_before.rows);
        assert_eq!(
            s_after.columns["k"].histogram_kind,
            s_before.columns["k"].histogram_kind
        );
        assert_eq!(engine2.catalog().epoch(), engine.catalog().epoch());
        // The rows themselves, in scan order.
        let f = after.file;
        let rows: Vec<Row> = engine2
            .storage()
            .scan_file(f)
            .unwrap()
            .map(|r| r.unwrap().1)
            .collect();
        assert_eq!(rows.len(), 50);
        assert_eq!(rows[7].get(1), &Value::str("r7"));
        // Index answers point at real rows.
        let idx = after.indexes["k"];
        let hits = engine2
            .storage()
            .index_lookup(idx, &Value::Int(33))
            .unwrap();
        assert_eq!(hits.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn feedback_with_stale_deps_degrades_to_miss() {
        let dir = std::env::temp_dir().join(format!("mq_persist_fb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fb.mqsnap");
        let engine = seeded_engine();
        let v = engine.catalog().data_version("t").unwrap();
        engine
            .feedback()
            .record(1, 123.0, vec![("t".to_string(), v)]);
        engine
            .feedback()
            .record(2, 456.0, vec![("t".to_string(), v + 99)]);
        save(&engine, &path).unwrap();
        let (engine2, report) = restore(EngineConfig::default(), &path).unwrap();
        assert_eq!(report.feedback_dropped, 1);
        assert_eq!(report.feedback_entries, 1);
        assert_eq!(engine2.feedback().get(1).map(|e| e.rows), Some(123.0));
        assert!(engine2.feedback().get(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_refuses_while_query_open() {
        let dir = std::env::temp_dir().join(format!("mq_persist_busy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("busy.mqsnap");
        let engine = seeded_engine();
        let logical = mq_sql::plan_sql("select k from t where k >= 0", engine.catalog()).unwrap();
        engine.manifests().begin(
            777,
            logical,
            crate::ReoptMode::Full,
            "tmp_reopt_777_".to_string(),
        );
        let err = save(&engine, &path).unwrap_err();
        assert!(matches!(err, MqError::InvalidConfig(_)), "{err}");
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
