//! # mq-reopt — Dynamic Mid-Query Re-Optimization
//!
//! The primary contribution of Kabra & DeWitt (SIGMOD 1998),
//! implemented end-to-end over the mq-* substrate crates:
//!
//! * [`scia`] — the **statistics-collectors insertion algorithm**
//!   (§2.5): assigns *inaccuracy potentials* (low/medium/high) to the
//!   optimizer's estimates using the paper's rule set, ranks candidate
//!   runtime statistics by effectiveness, and inserts collector
//!   operators whose total estimated overhead stays below the fraction
//!   `μ` of the optimizer's estimated query time;
//! * [`improve`] — turns runtime observations into **improved
//!   estimates** for the remainder of the plan (§2.2);
//! * [`remainder`] — reconstructs the **remainder query** of a
//!   partially-executed physical plan, with the finished part replaced
//!   by a scan of a (to-be-)materialized temp table (§2.4, Figure 6);
//! * [`controller`] — the runtime decision maker (the paper's modified
//!   scheduler/dispatcher, §3.1): on each completed blocking phase it
//!   re-allocates memory for not-yet-started operators (§2.3) and
//!   applies the Equation 1 / Equation 2 heuristics (with a calibrated
//!   `T_opt`) to decide whether to re-optimize and switch plans;
//! * [`engine`] — the top-level [`engine::Engine`]: optimize → insert
//!   collectors → allocate memory → execute with the controller
//!   attached, looping through plan switches until the query finishes.
//!
//! Execution modes ([`ReoptMode`]) reproduce the paper's Figure 11
//! ablation: `Off`, `MemoryOnly`, `PlanOnly`, `Full`.

pub mod controller;
pub mod engine;
pub mod explain;
pub mod improve;
pub mod manifest;
pub mod persist;
pub mod remainder;
pub mod scia;

#[cfg(test)]
mod engine_tests;

pub use controller::ReoptController;
pub use engine::{AuditReport, Engine, JobEnv, QueryOutcome, RecoveryReport};
pub use explain::{explain_analyze, explain_plan};
pub use manifest::{CheckpointRecord, ManifestStore, QueryManifest};
pub use mq_cache::{CacheEntry, CacheStats, FeedbackStore, SubPlanCache};
pub use mq_par::{ExchangeReport, ParReport, ParSpec, SkewReport};
pub use mq_plancache::{normalize, NormalizedQuery, PlanCache, PlanCacheStats};
pub use persist::SnapshotReport;
pub use scia::{insert_collectors, InaccuracyLevel, SciaReport};

/// Which parts of Dynamic Re-Optimization are active (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReoptMode {
    /// Plain execution: no collectors, no monitoring.
    Off,
    /// Collect statistics; use them only for memory re-allocation.
    MemoryOnly,
    /// Collect statistics; use them only for plan modification.
    PlanOnly,
    /// The full algorithm.
    Full,
}

impl ReoptMode {
    /// Whether statistics collectors are inserted at all.
    pub fn collects(&self) -> bool {
        !matches!(self, ReoptMode::Off)
    }

    /// Whether memory re-allocation is enabled.
    pub fn reallocates_memory(&self) -> bool {
        matches!(self, ReoptMode::MemoryOnly | ReoptMode::Full)
    }

    /// Whether plan modification is enabled.
    pub fn modifies_plans(&self) -> bool {
        matches!(self, ReoptMode::PlanOnly | ReoptMode::Full)
    }
}

impl std::fmt::Display for ReoptMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ReoptMode::Off => "off",
            ReoptMode::MemoryOnly => "memory-only",
            ReoptMode::PlanOnly => "plan-only",
            ReoptMode::Full => "full",
        })
    }
}
