//! EXPLAIN / EXPLAIN ANALYZE rendering.
//!
//! `EXPLAIN` shows the optimizer's annotated plan before execution;
//! `EXPLAIN ANALYZE` re-renders the plan that actually produced the
//! rows, lining the optimizer's estimates up against the observed
//! per-operator counters ([`QueryOutcome::actuals`]) — the
//! estimated-vs-actual cardinality comparison is the heart of the
//! paper's argument, so the renderer puts it front and center on every
//! line. Statistics collectors are marked as the potential
//! re-optimization points they are, and scans over `tmp_reopt_*` temp
//! tables are marked as the materialized cut of an accepted switch.

use std::collections::HashMap;
use std::fmt::Write as _;

use mq_exec::OpActuals;
use mq_par::ParReport;
use mq_plan::{NodeId, PhysOp, PhysPlan};

use crate::engine::QueryOutcome;

/// Render a plan for `EXPLAIN`: estimates only, no execution.
pub fn explain_plan(plan: &PhysPlan) -> String {
    let mut out = String::new();
    render_node(&mut out, plan, 0, None, None);
    out
}

/// Render a finished query for `EXPLAIN ANALYZE`: headline counters,
/// the final plan with per-operator estimated vs actual rows, and the
/// controller's decision log.
pub fn explain_analyze(outcome: &QueryOutcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXPLAIN ANALYZE ({} mode): {} rows in {:.1} ms simulated",
        outcome.mode,
        outcome.rows.len(),
        outcome.time_ms
    );
    let _ = writeln!(
        out,
        "plan switches: {}   memory re-allocations: {}   collector reports: {}   segment retries: {}",
        outcome.plan_switches,
        outcome.memory_reallocs,
        outcome.collector_reports,
        outcome.segment_retries
    );
    if let Some(par) = &outcome.par {
        let _ = writeln!(
            out,
            "partitions: {}   buckets: {}   exchange stages: {}   skew verdicts: {}   parallel saving: {:.1} ms",
            par.partitions,
            par.buckets,
            par.exchanges.len(),
            par.skew.len(),
            par.saved_ms
        );
    }
    render_node(
        &mut out,
        &outcome.final_plan,
        0,
        Some(&outcome.actuals),
        outcome.par.as_ref(),
    );
    if !outcome.events.is_empty() {
        let _ = writeln!(out, "re-optimization events:");
        for (i, e) in outcome.events.iter().enumerate() {
            let _ = writeln!(out, "{:>3}. {e}", i + 1);
        }
    }
    out
}

/// Marker suffix identifying a node's role in re-optimization, if any.
fn marker(plan: &PhysPlan) -> &'static str {
    match &plan.op {
        PhysOp::StatsCollector { .. } => "  <-- collector (re-opt point)",
        PhysOp::Exchange { .. } => "  <-- exchange (partition boundary)",
        PhysOp::SeqScan { spec, .. } if spec.table.starts_with("tmp_reopt_") => {
            "  <-- materialized by plan switch"
        }
        PhysOp::CachedScan { .. } => "  <-- cached (cross-query reuse)",
        _ => "",
    }
}

fn render_node(
    out: &mut String,
    plan: &PhysPlan,
    indent: usize,
    actuals: Option<&HashMap<NodeId, OpActuals>>,
    par: Option<&ParReport>,
) {
    let pad = "  ".repeat(indent);
    let _ = write!(out, "{pad}{} {}", plan.op.name(), plan.op_detail());
    match actuals {
        Some(map) => match map.get(&plan.id) {
            Some(a) => {
                let _ = write!(
                    out,
                    "  (est rows={:.0}, actual rows={}",
                    plan.annot.est_rows, a.rows
                );
                if a.cpu_ops > 0 || a.io_pages > 0 {
                    let _ = write!(out, ", cpu={}, io={}", a.cpu_ops, a.io_pages);
                }
                let _ = write!(
                    out,
                    ", est time≈{:.1}ms, mem={}KB)",
                    plan.annot.est_time_ms,
                    plan.annot.mem_grant_bytes / 1024
                );
            }
            // A node with no actuals never produced a row (e.g. it sat
            // above a LIMIT that closed early, or the attempt restarted
            // before reaching it).
            None => {
                let _ = write!(
                    out,
                    "  (est rows={:.0}, actual rows=0, never executed)",
                    plan.annot.est_rows
                );
            }
        },
        None => {
            let _ = write!(
                out,
                "  (est rows={:.0}, est time≈{:.1}ms, total≈{:.1}ms, mem={}KB)",
                plan.annot.est_rows,
                plan.annot.est_time_ms,
                plan.annot.est_total_time_ms,
                plan.annot.mem_grant_bytes / 1024
            );
        }
    }
    let _ = writeln!(out, "{}", marker(plan));
    // Exchange operators get the partitioned view: what the optimizer
    // would estimate per partition (uniform split) against the rows the
    // driver actually routed to each one — per-partition est vs actual,
    // the skew story at a glance.
    if let (PhysOp::Exchange { partitions, .. }, Some(report)) = (&plan.op, par) {
        if let Some(ex) = report.exchange(plan.id) {
            let est_each = plan.annot.est_rows / (*partitions).max(1) as f64;
            let _ = writeln!(
                out,
                "{pad}    per-partition rows (est≈{est_each:.0} each): {:?}",
                ex.per_partition_rows,
                pad = "  ".repeat(indent)
            );
        }
        for skew in report.skew.iter().filter(|s| s.node == plan.id) {
            let _ = writeln!(
                out,
                "{pad}    skew verdict: max/mean {:.2} > θ {:.2} → {} (now {:.2})",
                skew.ratio,
                skew.theta,
                skew.action,
                skew.after_ratio,
                pad = "  ".repeat(indent)
            );
        }
    }
    for c in &plan.children {
        render_node(out, c, indent + 1, actuals, par);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_plan::ScanSpec;

    fn scan(table: &str) -> PhysPlan {
        let schema = mq_common::Schema::new(vec![mq_common::Field::qualified(
            table,
            "a",
            mq_common::DataType::Int,
        )])
        .unwrap();
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: table.into(),
                    file: mq_common::FileId(0),
                    pages: 10,
                    rows: 100,
                },
                filter: None,
            },
            vec![],
            schema,
        );
        p.annot.est_rows = 100.0;
        p
    }

    #[test]
    fn explain_shows_estimates_without_actuals() {
        let text = explain_plan(&scan("lineitem"));
        assert!(text.contains("SeqScan lineitem"), "{text}");
        assert!(text.contains("est rows=100"), "{text}");
        assert!(!text.contains("actual rows"), "{text}");
    }

    #[test]
    fn temp_table_scan_is_marked_as_switch_materialization() {
        let text = explain_plan(&scan("tmp_reopt_q7_1"));
        assert!(text.contains("materialized by plan switch"), "{text}");
    }
}
