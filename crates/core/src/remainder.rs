//! Remainder-query reconstruction (§2.4, Figure 6).
//!
//! When the controller decides to switch plans at a cut node, the
//! "SQL corresponding to the remainder of the query is generated in
//! terms of \[the\] temporary file" — here, a [`LogicalPlan`] in which
//! the cut subtree is replaced by a scan of the temp table. The temp
//! table keeps the cut output's *original column qualifiers*, so every
//! upstream predicate, join pair and grouping column resolves
//! unchanged.

use mq_common::{MqError, Result};
use mq_expr::{cmp, CmpOp, Expr};
use mq_plan::{LogicalPlan, NodeId, PhysOp, PhysPlan};

/// Convert the physical plan `plan` into the logical remainder query,
/// replacing the subtree rooted at `cut` with a scan of `temp_table`.
pub fn remainder_query(plan: &PhysPlan, cut: NodeId, temp_table: &str) -> Result<LogicalPlan> {
    if plan.find(cut).is_none() {
        return Err(MqError::Internal(format!("cut {cut} not in plan")));
    }
    convert(plan, cut, temp_table)
}

fn convert(p: &PhysPlan, cut: NodeId, temp: &str) -> Result<LogicalPlan> {
    if p.id == cut {
        return Ok(LogicalPlan::Scan {
            table: temp.to_string(),
            filter: None,
        });
    }
    Ok(match &p.op {
        PhysOp::SeqScan { spec, filter } => LogicalPlan::Scan {
            table: spec.table.clone(),
            filter: filter.as_ref().map(Expr::unbind),
        },
        // A cached materialization is catalog-registered under its
        // cache-table name, so the remainder can re-reference it like
        // any base table (no predicate: the cache holds final output).
        PhysOp::CachedScan { spec, .. } => LogicalPlan::Scan {
            table: spec.table.clone(),
            filter: None,
        },
        PhysOp::IndexScan {
            spec,
            column,
            lo,
            hi,
            residual,
            ..
        } => {
            // Reconstruct the sargable predicate the index absorbed.
            let colref = mq_expr::col(&format!("{}.{}", spec.table, column));
            let mut conjs = Vec::new();
            if let Some(lo) = lo {
                conjs.push(cmp(CmpOp::Ge, colref.clone(), Expr::Literal(lo.clone())));
            }
            if let Some(hi) = hi {
                conjs.push(cmp(CmpOp::Le, colref, Expr::Literal(hi.clone())));
            }
            if let Some(r) = residual {
                conjs.push(r.unbind());
            }
            LogicalPlan::Scan {
                table: spec.table.clone(),
                filter: if conjs.is_empty() {
                    None
                } else {
                    Some(mq_expr::and(conjs))
                },
            }
        }
        PhysOp::Filter { predicate } => LogicalPlan::Filter {
            input: Box::new(convert(&p.children[0], cut, temp)?),
            predicate: predicate.unbind(),
        },
        PhysOp::Project { exprs } => LogicalPlan::Project {
            input: Box::new(convert(&p.children[0], cut, temp)?),
            exprs: exprs.iter().map(|(e, n)| (e.unbind(), n.clone())).collect(),
        },
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        } => {
            let left = convert(&p.children[0], cut, temp)?;
            let right = convert(&p.children[1], cut, temp)?;
            let on = build_keys
                .iter()
                .zip(probe_keys)
                .map(|(&b, &pr)| {
                    (
                        p.children[0].schema.field(b).qualified_name(),
                        p.children[1].schema.field(pr).qualified_name(),
                    )
                })
                .collect();
            LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
            }
        }
        PhysOp::IndexNLJoin {
            outer_key,
            inner,
            inner_column,
            residual,
            ..
        } => {
            let left = convert(&p.children[0], cut, temp)?;
            let join = LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(LogicalPlan::Scan {
                    table: inner.table.clone(),
                    filter: None,
                }),
                on: vec![(
                    p.children[0].schema.field(*outer_key).qualified_name(),
                    format!("{}.{}", inner.table, inner_column),
                )],
            };
            match residual {
                Some(r) => LogicalPlan::Filter {
                    input: Box::new(join),
                    predicate: r.unbind(),
                },
                None => join,
            }
        }
        PhysOp::Sort { keys } => LogicalPlan::Sort {
            input: Box::new(convert(&p.children[0], cut, temp)?),
            keys: keys
                .iter()
                .map(|&(k, asc)| (p.children[0].schema.field(k).qualified_name(), asc))
                .collect(),
        },
        PhysOp::HashAggregate { group, aggs } => LogicalPlan::Aggregate {
            input: Box::new(convert(&p.children[0], cut, temp)?),
            group_by: group
                .iter()
                .map(|&g| p.children[0].schema.field(g).qualified_name())
                .collect(),
            aggs: aggs
                .iter()
                .map(|a| mq_plan::AggExpr {
                    func: a.func,
                    arg: a.arg.as_ref().map(Expr::unbind),
                    name: a.name.clone(),
                })
                .collect(),
        },
        PhysOp::Limit { n } => LogicalPlan::Limit {
            input: Box::new(convert(&p.children[0], cut, temp)?),
            n: *n,
        },
        // Collectors and exchanges are physical artifacts with no
        // logical content; the remainder sees straight through them.
        PhysOp::StatsCollector { .. } | PhysOp::Exchange { .. } => {
            convert(&p.children[0], cut, temp)?
        }
    })
}

/// Count the joins in the remainder (for the Equation 1 `T_opt`
/// calibration lookup): joins strictly outside the cut subtree.
pub fn remainder_join_count(plan: &PhysPlan, cut: NodeId) -> usize {
    fn rec(p: &PhysPlan, cut: NodeId) -> usize {
        if p.id == cut {
            return 0;
        }
        let own = usize::from(matches!(
            p.op,
            PhysOp::HashJoin { .. } | PhysOp::IndexNLJoin { .. }
        ));
        own + p.children.iter().map(|c| rec(c, cut)).sum::<usize>()
    }
    rec(plan, cut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::ScanSpec;

    fn scan(name: &str) -> PhysPlan {
        PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: name.into(),
                    file: FileId(0),
                    pages: 1,
                    rows: 1,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(name, "k", DataType::Int)]).unwrap(),
        )
    }

    fn join(l: PhysPlan, r: PhysPlan) -> PhysPlan {
        let schema = l.schema.join(&r.schema);
        PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![l, r],
            schema,
        )
    }

    #[test]
    fn cut_replaced_by_temp_scan() {
        let mut plan = join(join(scan("a"), scan("b")), scan("c"));
        plan.assign_ids();
        let cut = plan.children[0].id; // the a⋈b subtree
        let logical = remainder_query(&plan, cut, "tmp1").unwrap();
        match &logical {
            LogicalPlan::Join { left, right, on } => {
                assert!(matches!(
                    left.as_ref(),
                    LogicalPlan::Scan { table, .. } if table == "tmp1"
                ));
                assert!(matches!(
                    right.as_ref(),
                    LogicalPlan::Scan { table, .. } if table == "c"
                ));
                // Join keys keep their original qualified names.
                assert_eq!(on[0].0, "a.k");
                assert_eq!(on[0].1, "c.k");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn join_counting() {
        let mut plan = join(join(scan("a"), scan("b")), scan("c"));
        plan.assign_ids();
        let cut = plan.children[0].id;
        assert_eq!(remainder_join_count(&plan, cut), 1);
        assert_eq!(remainder_join_count(&plan, plan.id), 0);
    }

    #[test]
    fn collectors_are_transparent() {
        let base = scan("a");
        let schema = base.schema.clone();
        let coll = PhysPlan::new(
            PhysOp::StatsCollector {
                specs: vec![],
                site: "s".into(),
            },
            vec![base],
            schema,
        );
        let mut plan = join(coll, scan("b"));
        plan.assign_ids();
        let logical = remainder_query(&plan, NodeId(usize::MAX - 1), "t");
        // cut id not found → error
        assert!(logical.is_err());
        let logical = remainder_query(&plan, plan.children[1].id, "t").unwrap();
        match logical {
            LogicalPlan::Join { left, .. } => {
                assert!(matches!(*left, LogicalPlan::Scan { ref table, .. } if table == "a"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn missing_cut_errors() {
        let mut plan = scan("a");
        plan.assign_ids();
        assert!(remainder_query(&plan, NodeId(99), "t").is_err());
    }
}

#[cfg(test)]
mod reconstruction_tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, IndexId, Schema, Value};
    use mq_plan::ScanSpec;

    /// An IndexScan's absorbed sargable predicate must be reconstructed
    /// in the remainder query (otherwise the re-planned query would
    /// silently drop a filter).
    #[test]
    fn index_scan_predicate_reconstructed() {
        let schema = Schema::new(vec![Field::qualified("t", "k", DataType::Int)]).unwrap();
        let scan = PhysPlan::new(
            PhysOp::IndexScan {
                spec: ScanSpec {
                    table: "t".into(),
                    file: FileId(0),
                    pages: 1,
                    rows: 10,
                },
                index: IndexId(0),
                column: "k".into(),
                lo: Some(Value::Int(5)),
                hi: Some(Value::Int(9)),
                residual: None,
                index_height: 1,
                clustering: 0.0,
            },
            vec![],
            schema.clone(),
        );
        let other = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: "u".into(),
                    file: FileId(1),
                    pages: 1,
                    rows: 10,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified("u", "k", DataType::Int)]).unwrap(),
        );
        let joined_schema = scan.schema.join(&other.schema);
        let mut plan = PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![scan, other],
            joined_schema,
        );
        plan.assign_ids();
        let cut = plan.children[1].id; // replace `u` with a temp
        let logical = remainder_query(&plan, cut, "tmp").unwrap();
        let text = logical.to_string();
        assert!(text.contains("t.k >= 5"), "{text}");
        assert!(text.contains("t.k <= 9"), "{text}");
        assert!(text.contains("Scan tmp"), "{text}");
    }

    /// Sort keys and aggregate groups map back to qualified names.
    #[test]
    fn sort_and_aggregate_reconstructed() {
        let schema = Schema::new(vec![Field::qualified("t", "a", DataType::Int)]).unwrap();
        let scan = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: "t".into(),
                    file: FileId(0),
                    pages: 1,
                    rows: 1,
                },
                filter: None,
            },
            vec![],
            schema.clone(),
        );
        let sort = PhysPlan::new(
            PhysOp::Sort {
                keys: vec![(0, false)],
            },
            vec![scan],
            schema.clone(),
        );
        let out = Schema::new(vec![
            Field::qualified("t", "a", DataType::Int),
            Field::new("n", DataType::Int),
        ])
        .unwrap();
        let mut plan = PhysPlan::new(
            PhysOp::HashAggregate {
                group: vec![0],
                aggs: vec![mq_plan::AggExpr {
                    func: mq_plan::AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                }],
            },
            vec![sort],
            out,
        );
        plan.assign_ids();
        let cut = plan.children[0].children[0].id; // the scan
        let logical = remainder_query(&plan, cut, "tmp").unwrap();
        let text = logical.to_string();
        assert!(text.contains("Aggregate group=[t.a]"), "{text}");
        assert!(text.contains("Sort [t.a DESC]"), "{text}");
    }
}
