//! The Dynamic Re-Optimization controller (§2.4, §3.1).
//!
//! Plugged into the executor as an [`ExecMonitor`], the controller is
//! the paper's modified scheduler/dispatcher. Collectors report
//! observed statistics as their pipelines finish; at every completed
//! blocking phase the controller:
//!
//! 1. folds the observations into **improved estimates** for the
//!    remainder of the plan;
//! 2. re-invokes the **memory manager** for operators that have not
//!    started (§2.3, Figure 3) — when the mode allows;
//! 3. applies the paper's two heuristics — Equation 1
//!    (`T_opt,estimated / T_cur,improved > θ1` ⇒ do not re-optimize)
//!    and Equation 2
//!    (`(T_cur,improved − T_cur,optimizer)/T_cur,optimizer > θ2`
//!    ⇒ plan is suspected sub-optimal) — and, when both pass,
//!    re-invokes the optimizer on the **remainder query** over a
//!    placeholder temp table carrying the improved statistics;
//! 4. accepts the new plan only if
//!    `T_new + T_materialize < T_cur,improved`, in which case it
//!    requests a plan switch by unwinding execution with
//!    [`MqError::PlanSwitch`] — the engine then materializes the cut
//!    subtree (whose build artifacts survived) and runs the new plan.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mq_catalog::{Catalog, ColumnStats, TableStats};
use mq_common::{EngineConfig, MqError, Result, SimClock};
use mq_exec::{ExecMonitor, ObservedStats};
use mq_memory::MemoryManager;
use mq_optimizer::{materialize_cost, recost, OptCalibration, Optimizer};
use mq_plan::{LogicalPlan, NodeId, PhysOp, PhysPlan};
use mq_storage::Storage;
use parking_lot::Mutex;

use mq_obs::{ObsEvent, ReoptVerdict};

use crate::improve::ImprovedEstimates;
use crate::remainder::{remainder_join_count, remainder_query};
use crate::ReoptMode;

/// Inaccuracy factor of an observation: `max(obs/est, est/obs)` (≥ 1;
/// 1 = the estimate was exact). Degenerate estimates clamp to ≥ ~0.
fn inaccuracy_factor(observed: u64, estimated: f64) -> f64 {
    let r = (observed as f64 / estimated.max(1e-9)).max(1e-9);
    r.max(1.0 / r)
}

/// A decided-but-not-yet-executed plan switch.
#[derive(Debug, Clone)]
pub struct PendingSwitch {
    /// Plan node whose output will be materialized.
    pub cut: NodeId,
    /// Temp-table name registered for the materialized result.
    pub temp_name: String,
    /// The remainder query over the temp table.
    pub remainder: LogicalPlan,
    /// The decision's estimated times, for the event log.
    pub expected_new_ms: f64,
    pub expected_cur_ms: f64,
}

/// Controller state for one execution attempt.
#[derive(Default)]
struct CtrlState {
    plan: Option<PhysPlan>,
    /// Per-collector provisional-report throttles: the observed/
    /// estimated ratio at which we last re-allocated.
    progress_ratio: HashMap<NodeId, f64>,
    improved: ImprovedEstimates,
    completed: HashSet<NodeId>,
    started: HashSet<NodeId>,
    finished_consumers: HashSet<NodeId>,
    pending: Option<PendingSwitch>,
    suppressed: bool,
    events: Vec<String>,
    reallocs: u32,
    collector_reports: u32,
    temp_counter: u32,
    switches_done: u32,
}

/// The runtime controller; shared (`Rc`) between the engine and the
/// execution context — both on the query's own thread. The grants
/// table it updates is `Arc<Mutex<…>>` because the *executor* side is
/// shared with the concurrent runtime.
pub struct ReoptController {
    mode: ReoptMode,
    cfg: EngineConfig,
    catalog: Catalog,
    storage: Storage,
    optimizer: Optimizer,
    calibration: Arc<OptCalibration>,
    mm: MemoryManager,
    clock: SimClock,
    grants: Arc<Mutex<HashMap<NodeId, usize>>>,
    state: RefCell<CtrlState>,
    /// Temp-table name prefix, unique per query execution so
    /// concurrent Full-mode queries never collide in the shared
    /// catalog.
    temp_prefix: String,
    /// Safety valve: maximum plan switches per query.
    max_switches: u32,
}

impl ReoptController {
    /// Create a controller wired to the engine's shared components.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        mode: ReoptMode,
        cfg: EngineConfig,
        catalog: Catalog,
        storage: Storage,
        optimizer: Optimizer,
        calibration: Arc<OptCalibration>,
        mm: MemoryManager,
        clock: SimClock,
        grants: Arc<Mutex<HashMap<NodeId, usize>>>,
        temp_prefix: String,
    ) -> ReoptController {
        ReoptController {
            mode,
            cfg,
            catalog,
            storage,
            optimizer,
            calibration,
            mm,
            clock,
            grants,
            state: RefCell::new(CtrlState::default()),
            temp_prefix,
            max_switches: 2,
        }
    }

    /// Reset per-attempt state and install the plan about to execute.
    /// Query-lifetime counters (switches, reallocs, reports, events,
    /// temp numbering) survive across attempts.
    pub fn begin_attempt(&self, plan: PhysPlan) {
        let mut st = self.state.borrow_mut();
        let temp_counter = st.temp_counter;
        let switches_done = st.switches_done;
        let reallocs = st.reallocs;
        let collector_reports = st.collector_reports;
        let events = std::mem::take(&mut st.events);
        *st = CtrlState {
            plan: Some(plan),
            temp_counter,
            switches_done,
            reallocs,
            collector_reports,
            events,
            ..CtrlState::default()
        };
    }

    /// Take the decided switch (engine side, after the unwind).
    pub fn take_pending(&self) -> Option<PendingSwitch> {
        let mut st = self.state.borrow_mut();
        st.switches_done += 1;
        st.pending.take()
    }

    /// Suppress decisions (used while draining the cut subtree).
    pub fn set_suppressed(&self, v: bool) {
        self.state.borrow_mut().suppressed = v;
    }

    /// Event log (drained by the engine into the outcome).
    pub fn take_events(&self) -> Vec<String> {
        std::mem::take(&mut self.state.borrow_mut().events)
    }

    /// Append an engine-side event (segment retries, cleanup oddities)
    /// to the query's event log.
    pub fn note(&self, msg: String) {
        let mut st = self.state.borrow_mut();
        self.log(&mut st, msg);
    }

    /// (memory re-allocations, collector reports) so far.
    pub fn counters(&self) -> (u32, u32) {
        let st = self.state.borrow();
        (st.reallocs, st.collector_reports)
    }

    /// Number of accepted plan switches so far.
    pub fn switches(&self) -> u32 {
        self.state.borrow().switches_done
    }

    /// Complete collector observations of the current (final) attempt,
    /// for statistics feedback. Node ids refer to that attempt's plan.
    pub fn complete_observations(&self) -> Vec<ObservedStats> {
        self.state
            .borrow()
            .improved
            .observations()
            .values()
            .filter(|o| o.complete)
            .cloned()
            .collect()
    }

    fn log(&self, st: &mut CtrlState, msg: String) {
        st.events.push(msg);
    }

    /// Mark the blocking child subtree of `node` as completed and the
    /// relevant consumers as started/finished.
    fn mark_progress(&self, st: &mut CtrlState, node: NodeId) {
        let Some(plan) = &st.plan else { return };
        let Some(n) = plan.find(node) else { return };
        let mut newly_completed = Vec::new();
        if let Some(build) = n.children.first() {
            build.walk(&mut |c| {
                newly_completed.push(c.id);
            });
        }
        let mut finished_consumers = Vec::new();
        for id in &newly_completed {
            if let Some(c) = plan.find(*id) {
                if c.op.is_memory_consumer() {
                    finished_consumers.push(*id);
                }
            }
        }
        st.completed.extend(newly_completed);
        st.finished_consumers.extend(finished_consumers);
        // Only this node's grant is committed: operators read their
        // grant when their own build/input phase starts, which for
        // every ancestor is still in the future (segment semantics).
        st.started.insert(node);
    }

    /// §2.3: re-run the memory manager with improved estimates for the
    /// operators that have not begun executing.
    fn reallocate_memory(&self, st: &mut CtrlState, improved: &PhysPlan) {
        let Some(plan) = st.plan.clone() else { return };
        let mut work = improved.clone();
        // Headroom: improved estimates correct the observed error but
        // inherit the join-selectivity bias of everything still
        // unobserved, which historically under-corrects. Memory is
        // cheap insurance when the budget allows it, so demands are
        // derived from 1.5× the improved cardinalities; the allocator
        // still squeezes fairly when the budget does not stretch.
        let headroom = self.cfg.realloc_headroom;
        work.walk_mut(&mut |n| n.annot.est_rows *= headroom);
        let report =
            match self
                .mm
                .reallocate(&mut work, &self.cfg, &st.started, &st.finished_consumers)
            {
                Ok(r) => r,
                Err(_) => return, // cannot satisfy minimums: keep old grants
            };
        let mut changed = false;
        for g in &report.grants {
            if st.started.contains(&g.node) {
                continue;
            }
            let old = plan
                .find(g.node)
                .map(|n| n.annot.mem_grant_bytes)
                .unwrap_or(0);
            // Monotone grants: an operator's grant is never revoked
            // once assigned — every raise was budget-checked when it
            // was made, and clawing memory back on the strength of a
            // *still-estimated* demand has repeatedly proven to induce
            // spills worth far more than the memory recycled. (The sum
            // of grants can transiently exceed the budget when a later
            // re-allocation shifts shares; Paradise's own allocator had
            // the same slack between allocation rounds.)
            let granted = g.granted.max(old);
            let g = mq_memory::Grant { granted, ..*g };
            if g.granted != old {
                changed = true;
                self.grants.lock().insert(g.node, g.granted);
                if let Some(p) = st.plan.as_mut().and_then(|p| p.find_mut(g.node)) {
                    p.annot.mem_grant_bytes = g.granted;
                }
                self.log(
                    st,
                    format!("memory: {} grant {} -> {} bytes", g.node, old, g.granted),
                );
                mq_obs::emit(|| ObsEvent::GrantChange {
                    node: g.node.0 as u64,
                    old_bytes: old as u64,
                    new_bytes: g.granted as u64,
                });
            }
        }
        if changed {
            st.reallocs += 1;
        }
    }

    /// §2.4: the re-optimization decision. Returns the accepted switch.
    fn consider_replan(
        &self,
        st: &mut CtrlState,
        node: NodeId,
        improved: &PhysPlan,
    ) -> Result<Option<PendingSwitch>> {
        let plan = st.plan.clone().expect("plan installed");
        if plan.id == node {
            return Ok(None); // nothing above the cut
        }
        if st.switches_done >= self.max_switches {
            return Ok(None);
        }
        // Remaining-time estimates, excluding completed work.
        let t_cur_improved = ImprovedEstimates::remaining_ms(improved, &st.completed);
        let t_cur_optimizer = ImprovedEstimates::remaining_ms(&plan, &st.completed);
        if t_cur_optimizer <= 0.0 || t_cur_improved <= 0.0 {
            return Ok(None);
        }

        // Equation 2: re-optimize only when observation and estimate
        // genuinely diverge. Two signals, either passing θ2 suffices:
        // the paper's time formulation ((T_improved − T_opt)/T_opt),
        // and the raw statistics divergence at any completed collector
        // ("the difference [between observed and estimated statistics]
        // is taken as an indicator of whether the query-execution plan
        // is sub-optimal", §1) — the time signal alone is blind when
        // the mis-allocation was already priced into the plan.
        let degradation = (t_cur_improved - t_cur_optimizer) / t_cur_optimizer;
        let stat_divergence = st
            .improved
            .observations()
            .values()
            .filter_map(|obs| {
                let est = plan.find(obs.node)?.annot.est_rows;
                if est <= 0.0 {
                    return None;
                }
                let r = obs.rows as f64 / est;
                Some((r.max(1.0 / r.max(1e-9)) - 1.0).abs())
            })
            .fold(0.0f64, f64::max);
        if degradation <= self.cfg.theta2 && stat_divergence <= self.cfg.theta2 {
            self.log(
                st,
                format!(
                    "replan@{node}: below θ2 (time degradation {degradation:.2}, stat divergence {stat_divergence:.2})"
                ),
            );
            mq_obs::emit(|| ObsEvent::Reopt {
                node: node.0 as u64,
                verdict: ReoptVerdict::BelowThreshold,
                t_new_ms: 0.0,
                t_cur_ms: t_cur_improved,
                degradation,
                divergence: stat_divergence,
            });
            return Ok(None);
        }

        // Re-optimization is about join orders and join methods; a
        // remainder without joins (a lone aggregate or sort) has no
        // alternatives worth the materialization (§2.4's "simple
        // queries will never get re-optimized").
        let joins = remainder_join_count(&plan, node);
        if joins == 0 {
            return Ok(None);
        }
        // Equation 1: optimization must be cheap relative to what is
        // left of the query.
        let t_opt_est = self.calibration.estimate_ms(joins, &self.cfg);
        if t_opt_est / t_cur_improved > self.cfg.theta1 {
            self.log(
                st,
                format!(
                    "replan@{node}: skipped by Eq.1 (T_opt {t_opt_est:.1}ms vs remaining {t_cur_improved:.1}ms)"
                ),
            );
            mq_obs::emit(|| ObsEvent::Reopt {
                node: node.0 as u64,
                verdict: ReoptVerdict::Eq1Skip,
                t_new_ms: t_opt_est,
                t_cur_ms: t_cur_improved,
                degradation,
                divergence: stat_divergence,
            });
            return Ok(None);
        }

        // Build the placeholder temp table carrying improved stats.
        st.temp_counter += 1;
        let temp_name = format!("{}{}", self.temp_prefix, st.temp_counter);
        let cut_node = improved.find(node).expect("cut in improved plan");
        let placeholder_file = self.storage.create_file();
        let stats = self.placeholder_stats(st, cut_node);
        let temp_rows = stats.rows;
        let temp_pages = stats.pages;
        self.catalog.register_materialized(
            &temp_name,
            placeholder_file,
            cut_node.schema.clone(),
            stats,
        )?;

        let mut decide = || -> Result<Option<PendingSwitch>> {
            let remainder = remainder_query(&plan, node, &temp_name)?;

            // Symmetric basis: price *continuing with the current plan
            // shape* from the same statistics the optimizer will use —
            // the temp table's improved statistics plus the catalog.
            // (Comparing runtime-inflated "improved" numbers for the
            // current plan against fresh optimizer numbers for the new
            // plan would bias every decision toward switching, because
            // both plans share whatever estimation errors remain in
            // the catalog.)
            let mut cur_shape = plan.clone();
            let temp_scan = PhysPlan::new(
                PhysOp::SeqScan {
                    spec: mq_plan::ScanSpec {
                        table: temp_name.clone(),
                        file: placeholder_file,
                        pages: temp_pages.max(1),
                        rows: temp_rows,
                    },
                    filter: None,
                },
                vec![],
                cut_node.schema.clone(),
            );
            let mut replaced = false;
            cur_shape.walk_mut(&mut |n| {
                if n.id == node && !replaced {
                    *n = temp_scan.clone();
                    replaced = true;
                }
            });
            mq_optimizer::annotate_physical(
                &mut cur_shape,
                &self.catalog,
                &self.storage,
                &self.cfg,
            )?;
            // Price "continue" with the grants execution would really
            // have: committed grants for started operators plus — only
            // when this mode performs memory re-allocation — a
            // re-allocation pass for the rest (annotate_physical kept
            // the current grant annotations; the clone shares node ids
            // with the running plan). In PlanOnly mode the current
            // grants are what the rest of the query will actually run
            // with, spills and all.
            if self.mode.reallocates_memory() {
                let _ = self.mm.reallocate(
                    &mut cur_shape,
                    &self.cfg,
                    &st.started,
                    &st.finished_consumers,
                );
            }
            recost(&mut cur_shape, &self.cfg);
            let t_cur_basis = cur_shape.annot.est_total_time_ms;
            if std::env::var("MQ_DECIDE").is_ok() {
                eprintln!("=== continue-shape @{node} ===\n{cur_shape}");
            }

            // Re-invoke the optimizer; charge its work as T_opt.
            let mut opt = self
                .optimizer
                .optimize(&remainder, &self.catalog, &self.storage)?;
            self.clock.add_opt_work(opt.work_units);
            // Price the new plan with a realistic memory allocation —
            // sized with the same 1.5× demand headroom the runtime
            // re-allocator uses, so an optimistically-undersized new
            // plan shows its spill risk in `t_new` instead of hiding it.
            let mut sized = opt.plan.clone();
            let headroom = self.cfg.realloc_headroom;
            sized.walk_mut(&mut |n| n.annot.est_rows *= headroom);
            if self.mm.allocate(&mut sized, &self.cfg).is_ok() {
                let mut grants: HashMap<NodeId, usize> = HashMap::new();
                sized.walk(&mut |n| {
                    grants.insert(n.id, n.annot.mem_grant_bytes);
                });
                opt.plan.walk_mut(&mut |n| {
                    if let Some(&g) = grants.get(&n.id) {
                        n.annot.mem_grant_bytes = g;
                    }
                });
                recost(&mut opt.plan, &self.cfg);
            }
            let t_new = opt.plan.annot.est_total_time_ms;
            if std::env::var("MQ_DECIDE").is_ok() {
                eprintln!("=== new-plan @{node} ===\n{}", opt.plan);
            }
            let t_mat = materialize_cost(
                cut_node.annot.est_rows * cut_node.annot.est_row_bytes,
                &self.cfg,
            )
            .time_ms(&self.cfg);
            // Accept only with a safety margin: both sides are
            // estimates, so a bare `<` (the paper's formulation) flips
            // coins near break-even; the margin keeps only switches
            // whose predicted win survives estimate noise.
            if (t_new + t_mat) * self.cfg.switch_margin < t_cur_basis {
                self.log(
                    st,
                    format!(
                        "replan@{node}: ACCEPT (new {t_new:.1}ms + mat {t_mat:.1}ms < continue {t_cur_basis:.1}ms; trigger improved {t_cur_improved:.1}ms vs planned {t_cur_optimizer:.1}ms)"
                    ),
                );
                mq_obs::emit(|| ObsEvent::Reopt {
                    node: node.0 as u64,
                    verdict: ReoptVerdict::Accept,
                    t_new_ms: t_new + t_mat,
                    t_cur_ms: t_cur_basis,
                    degradation,
                    divergence: stat_divergence,
                });
                Ok(Some(PendingSwitch {
                    cut: node,
                    temp_name: temp_name.clone(),
                    remainder,
                    expected_new_ms: t_new + t_mat,
                    expected_cur_ms: t_cur_basis,
                }))
            } else {
                self.log(
                    st,
                    format!(
                        "replan@{node}: rejected (new {t_new:.1}ms + mat {t_mat:.1}ms ≥ continue {t_cur_basis:.1}ms)"
                    ),
                );
                mq_obs::emit(|| ObsEvent::Reopt {
                    node: node.0 as u64,
                    verdict: ReoptVerdict::RejectCost,
                    t_new_ms: t_new + t_mat,
                    t_cur_ms: t_cur_basis,
                    degradation,
                    divergence: stat_divergence,
                });
                Ok(None)
            }
        };
        let accepted = decide();
        match &accepted {
            Ok(Some(_)) => {}
            _ => {
                // A failed placeholder drop must not fail the query (it
                // was running fine); log it — the engine audit flags
                // any survivor.
                if let Err(e) = self.catalog.drop_table(&temp_name) {
                    self.log(
                        st,
                        format!("cleanup: failed to drop placeholder {temp_name}: {e}"),
                    );
                }
                let _ = self.storage.drop_file(placeholder_file);
            }
        }
        accepted
    }

    /// Statistics for the placeholder temp table: improved cardinality
    /// plus every observed column distribution from the cut's subtree.
    fn placeholder_stats(&self, st: &CtrlState, cut: &PhysPlan) -> TableStats {
        let mut columns = HashMap::new();
        let rows = cut.annot.est_rows.max(0.0) as u64;
        // Baseline: every column inherits its base table's statistics
        // (the temp's columns keep their original qualifiers), with the
        // distinct count capped at the temp's cardinality. Without this
        // the remainder optimizer falls back to blind default
        // selectivities for any column no collector happened to watch.
        for field in cut.schema.fields() {
            let Some(q) = &field.qualifier else { continue };
            let Ok(entry) = self.catalog.table(q) else {
                continue;
            };
            let Some(stats) = &entry.stats else { continue };
            if let Some(cs) = stats.columns.get(field.name.as_ref()) {
                let mut cs = cs.clone();
                cs.distinct = cs.distinct.min(rows.max(1) as f64);
                columns.insert(field.name.to_string(), cs);
            }
        }
        cut.walk(&mut |n| {
            if let Some(obs) = st.improved.at(n.id) {
                for (qualified, oc) in &obs.columns {
                    let bare = qualified
                        .rsplit_once('.')
                        .map(|(_, b)| b)
                        .unwrap_or(qualified);
                    columns.insert(
                        bare.to_string(),
                        ColumnStats {
                            min: oc.min.clone(),
                            max: oc.max.clone(),
                            distinct: oc.distinct,
                            null_frac: oc.null_frac,
                            histogram: oc.histogram.clone(),
                            histogram_kind: oc.histogram.as_ref().map(|h| h.kind()),
                            clustering: oc.clustering,
                        },
                    );
                }
            }
        });
        let avg = cut.annot.est_row_bytes.max(1.0);
        TableStats {
            rows,
            pages: ((rows as f64 * avg) / self.cfg.page_size as f64).ceil() as u64,
            avg_row_bytes: avg,
            columns,
        }
    }
}

impl ExecMonitor for ReoptController {
    fn on_collector_progress(&self, node: NodeId, rows: u64) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if st.suppressed || st.plan.is_none() || !self.mode.reallocates_memory() {
            return Ok(());
        }
        let Some(est) = st
            .plan
            .as_ref()
            .and_then(|p| p.find(node))
            .map(|n| n.annot.est_rows)
        else {
            return Ok(());
        };
        let ratio = rows as f64 / est.max(1.0);
        let last = st.progress_ratio.get(&node).copied().unwrap_or(1.0);
        // React at each doubling past the estimate: the count is a
        // lower bound, so raising on it is always safe, and the
        // throttle keeps the overhead negligible.
        if ratio < 2.0 || ratio < last * 2.0 {
            return Ok(());
        }
        st.progress_ratio.insert(node, ratio);
        self.log(
            &mut st,
            format!(
                "progress {node}: ≥{rows} rows vs estimate {est:.0} — provisional re-allocation"
            ),
        );
        mq_obs::emit(|| ObsEvent::Collector {
            node: node.0 as u64,
            observed_rows: rows,
            estimated_rows: est,
            inaccuracy: inaccuracy_factor(rows, est),
            complete: false,
        });
        st.improved.record(ObservedStats {
            node,
            rows,
            avg_row_bytes: 0.0,
            columns: HashMap::new(),
            complete: false,
        });
        let plan = st.plan.clone().expect("plan installed");
        let improved = st.improved.improved_plan(&plan, &self.cfg);
        self.reallocate_memory(&mut st, &improved);
        Ok(())
    }

    fn on_collector(&self, stats: ObservedStats) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if st.suppressed {
            return Ok(());
        }
        st.collector_reports += 1;
        let est = st
            .plan
            .as_ref()
            .and_then(|p| p.find(stats.node))
            .map(|n| n.annot.est_rows)
            .unwrap_or(0.0);
        self.log(
            &mut st,
            format!(
                "collector {}: observed {} rows (optimizer estimated {est:.0})",
                stats.node, stats.rows
            ),
        );
        mq_obs::emit(|| ObsEvent::Collector {
            node: stats.node.0 as u64,
            observed_rows: stats.rows,
            estimated_rows: est,
            inaccuracy: inaccuracy_factor(stats.rows, est),
            complete: stats.complete,
        });
        st.improved.record(stats);
        Ok(())
    }

    fn on_phase_complete(&self, node: NodeId) -> Result<()> {
        let mut st = self.state.borrow_mut();
        if st.suppressed || st.plan.is_none() {
            return Ok(());
        }
        self.mark_progress(&mut st, node);

        // Improved view of the whole plan with current grants.
        let plan = st.plan.clone().expect("plan installed");
        let improved = st.improved.improved_plan(&plan, &self.cfg);

        if self.mode.reallocates_memory() {
            self.reallocate_memory(&mut st, &improved);
        }
        if self.mode.modifies_plans() {
            if let Some(pending) = self.consider_replan(&mut st, node, &improved)? {
                let cut = pending.cut;
                st.pending = Some(pending);
                return Err(MqError::PlanSwitch(cut.0));
            }
        }
        Ok(())
    }
}

/// Helper: does this plan have any collector with specs (diagnostics).
pub fn has_specced_collector(plan: &PhysPlan) -> bool {
    let mut found = false;
    plan.walk(&mut |n| {
        if let PhysOp::StatsCollector { specs, .. } = &n.op {
            if !specs.is_empty() {
                found = true;
            }
        }
    });
    found
}
