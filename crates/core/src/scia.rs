//! The statistics-collectors insertion algorithm (SCIA, §2.5).
//!
//! After the conventional optimizer produces an annotated plan, the
//! SCIA decides *where* to collect statistics and *which* statistics to
//! collect:
//!
//! 1. **Sites** — collectors sit at pipeline ends that feed a blocking
//!    phase: the build child of every hash join and the input of every
//!    sort/aggregate. Statistics gathered there are complete exactly
//!    when the dispatcher gets control back (§2.2's pipelining
//!    limitation is honoured by construction). Cardinality and average
//!    tuple size are always collected (their cost is negligible).
//! 2. **Candidates** — a histogram on attribute `a` is potentially
//!    useful if `a` appears in a join or selection predicate *above*
//!    the site; a distinct count if `a` is a grouping column of an
//!    aggregate above.
//! 3. **Inaccuracy potentials** — each candidate's corresponding
//!    optimizer estimate gets a low/medium/high potential via the
//!    paper's rules (histogram class on the base table, staleness
//!    bump, multi-attribute-selection bump, UDF ⇒ high, non-key-join
//!    bump, distinct counts high at intermediate points).
//! 4. **Budget** — candidates are ranked by (potential, affected plan
//!    fraction) and dropped least-effective-first until the estimated
//!    collection overhead is below `μ × T_plan`.

use std::collections::HashMap;

use mq_catalog::Catalog;
use mq_common::{EngineConfig, Result};
use mq_plan::{CollectorSpec, PhysOp, PhysPlan};
use mq_stats::HistogramKind;

/// The paper's low/medium/high inaccuracy-potential scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InaccuracyLevel {
    /// The optimizer's estimate is probably accurate.
    Low,
    /// Moderate chance of error.
    Medium,
    /// High chance of error — collect!
    High,
}

impl InaccuracyLevel {
    /// Raise by one level (saturating).
    pub fn bump(self) -> InaccuracyLevel {
        match self {
            InaccuracyLevel::Low => InaccuracyLevel::Medium,
            _ => InaccuracyLevel::High,
        }
    }
}

/// What the SCIA decided, for diagnostics and tests.
#[derive(Debug, Clone, Default)]
pub struct SciaReport {
    /// Collector sites inserted (parent blocking node, site label).
    pub sites: Vec<String>,
    /// Candidates kept: (site, column, kind, level, affected, cost_ms).
    pub kept: Vec<CandidateInfo>,
    /// Candidates dropped to fit the μ budget.
    pub dropped: Vec<CandidateInfo>,
    /// The μ budget in simulated ms.
    pub budget_ms: f64,
}

/// One SCIA candidate statistic.
#[derive(Debug, Clone)]
pub struct CandidateInfo {
    /// Site label.
    pub site: String,
    /// Column the statistic is over.
    pub column: String,
    /// `true` = histogram, `false` = distinct count.
    pub histogram: bool,
    /// Assigned inaccuracy potential.
    pub level: InaccuracyLevel,
    /// Number of unexecuted plan nodes the statistic can influence.
    pub affected: usize,
    /// Estimated collection cost (simulated ms).
    pub cost_ms: f64,
}

/// A use of a column above some site.
#[derive(Debug, Clone)]
struct ColumnUse {
    column: String,
    /// Plan nodes at-or-above the first use (the "affected fraction").
    affected: usize,
    /// Grouping use (wants distinct) vs predicate use (wants histogram).
    grouping: bool,
}

/// Insert statistics collectors into `plan` (in place), returning the
/// decision report. `plan` must already be annotated and costed; ids
/// are re-assigned afterwards.
pub fn insert_collectors(
    plan: &mut PhysPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<SciaReport> {
    let budget_ms = cfg.mu * plan.annot.est_total_time_ms;
    let mut report = SciaReport {
        budget_ms,
        ..SciaReport::default()
    };

    // Total nodes for "affected fraction" context.
    let staleness = table_staleness(catalog);

    // Walk the tree; at each blocking phase input, compute candidates.
    let mut site_counter = 0usize;
    insert_rec(
        plan,
        &mut Vec::new(),
        catalog,
        cfg,
        &staleness,
        &mut report,
        &mut site_counter,
    )?;

    // Enforce the μ budget globally: rank all kept candidates by
    // effectiveness, drop the weakest until within budget.
    let mut total: f64 = report.kept.iter().map(|c| c.cost_ms).sum();
    if total > budget_ms {
        let mut order: Vec<usize> = (0..report.kept.len()).collect();
        // Least effective first: lowest level, then smallest affected.
        order.sort_by(|&a, &b| {
            let (ca, cb) = (&report.kept[a], &report.kept[b]);
            ca.level
                .cmp(&cb.level)
                .then(ca.affected.cmp(&cb.affected))
                .then(cb.cost_ms.total_cmp(&ca.cost_ms))
        });
        let mut to_drop = Vec::new();
        for idx in order {
            if total <= budget_ms {
                break;
            }
            total -= report.kept[idx].cost_ms;
            to_drop.push(idx);
        }
        to_drop.sort_unstable_by(|a, b| b.cmp(a));
        for idx in to_drop {
            let dropped = report.kept.remove(idx);
            remove_spec(plan, &dropped);
            report.dropped.push(dropped);
        }
    }

    plan.assign_ids();
    Ok(report)
}

fn table_staleness(catalog: &Catalog) -> HashMap<String, f64> {
    catalog
        .table_names()
        .into_iter()
        .filter_map(|n| catalog.table(&n).ok().map(|t| (n, t.update_activity())))
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn insert_rec(
    plan: &mut PhysPlan,
    ancestors: &mut Vec<AncestorUse>,
    catalog: &Catalog,
    cfg: &EngineConfig,
    staleness: &HashMap<String, f64>,
    report: &mut SciaReport,
    site_counter: &mut usize,
) -> Result<()> {
    // Record this node's column uses for descendants.
    ancestors.push(ancestor_use_of(plan));

    // Which children feed a blocking phase?
    let blocking_children: Vec<usize> = match &plan.op {
        PhysOp::HashJoin { .. } => vec![0],
        PhysOp::Sort { .. } | PhysOp::HashAggregate { .. } => vec![0],
        _ => Vec::new(),
    };

    // Statistics feedback also wants eyes on unfiltered scans of stale
    // tables feeding *streamed* (probe) inputs: useless for this query's
    // decisions — the pipeline only completes at query end — but the
    // complete observation heals the catalog for every later query.
    let feedback_children: Vec<usize> = if cfg.stats_feedback {
        let candidates: &[usize] = match &plan.op {
            PhysOp::HashJoin { .. } => &[1],
            PhysOp::IndexNLJoin { .. } => &[0],
            _ => &[],
        };
        candidates
            .iter()
            .copied()
            .filter(|&i| feedback_site(&plan.children[i], staleness))
            .collect()
    } else {
        Vec::new()
    };

    let nchildren = plan.children.len();
    for i in 0..nchildren {
        insert_rec(
            &mut plan.children[i],
            ancestors,
            catalog,
            cfg,
            staleness,
            report,
            site_counter,
        )?;
        if (blocking_children.contains(&i) && worth_a_site(&plan.children[i], cfg, staleness))
            || feedback_children.contains(&i)
        {
            let child = &plan.children[i];
            let uses = collect_uses(child, ancestors);
            let site = format!("site{}@{}", *site_counter, plan.op.name());
            *site_counter += 1;

            let mut specs = Vec::new();
            for u in uses {
                let level = potential_for(child, &u, catalog, staleness);
                let cost_ms = child.annot.est_rows * 2.0 * cfg.cpu_op_ms;
                let cand = CandidateInfo {
                    site: site.clone(),
                    column: u.column.clone(),
                    histogram: !u.grouping,
                    level,
                    affected: u.affected,
                    cost_ms,
                };
                // Low-potential statistics are not worth observing at
                // all (§2.5: "not much reason to actually observe").
                if level == InaccuracyLevel::Low {
                    report.dropped.push(cand);
                    continue;
                }
                specs.push(CollectorSpec {
                    column: u.column,
                    histogram: !u.grouping,
                    distinct: u.grouping,
                });
                report.kept.push(cand);
            }
            // Always insert the collector: cardinality and average
            // tuple size are free and always useful.
            let child_owned = plan.children[i].clone();
            let schema = child_owned.schema.clone();
            let mut node = PhysPlan::new(
                PhysOp::StatsCollector {
                    specs,
                    site: site.clone(),
                },
                vec![child_owned],
                schema,
            );
            node.annot = plan.children[i].annot.clone();
            plan.children[i] = node;
            report.sites.push(site);
        }
    }
    ancestors.pop();
    Ok(())
}

/// A site over a bare unfiltered base scan observes nothing the catalog
/// does not already know *exactly* (file metadata gives cardinality);
/// skip those to keep plans lean — unless statistics feedback is on and
/// the table is stale, in which case observing the scan rebuilds that
/// table's column statistics for every future query (§2.2 feedback).
fn worth_a_site(child: &PhysPlan, cfg: &EngineConfig, staleness: &HashMap<String, f64>) -> bool {
    match &child.op {
        PhysOp::SeqScan { filter, .. } => {
            filter.is_some() || (cfg.stats_feedback && feedback_site(child, staleness))
        }
        // Cached materializations carry exact statistics (rows/pages
        // recorded at promotion); observing them teaches us nothing.
        PhysOp::CachedScan { .. } => false,
        _ => true,
    }
}

/// Whether a child is a feedback-worthy observation point: an
/// unfiltered scan of a stale base table (the only shape whose complete
/// observation describes the table itself rather than a subset).
fn feedback_site(child: &PhysPlan, staleness: &HashMap<String, f64>) -> bool {
    matches!(
        &child.op,
        PhysOp::SeqScan { filter: None, spec }
            if staleness.get(&spec.table).copied().unwrap_or(1.0) > 0.1
    )
}

/// Column uses contributed by one ancestor node.
struct AncestorUse {
    /// (column name, grouping?) pairs used by this node.
    uses: Vec<(String, bool)>,
    /// Subtree size at/above this node — proxy for affected fraction.
    weight: usize,
}

fn ancestor_use_of(plan: &PhysPlan) -> AncestorUse {
    let mut uses = Vec::new();
    match &plan.op {
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        } => {
            for &k in build_keys {
                uses.push((plan.children[0].schema.field(k).qualified_name(), false));
            }
            for &k in probe_keys {
                uses.push((plan.children[1].schema.field(k).qualified_name(), false));
            }
        }
        PhysOp::IndexNLJoin {
            outer_key,
            inner,
            inner_column,
            residual,
            ..
        } => {
            uses.push((
                plan.children[0].schema.field(*outer_key).qualified_name(),
                false,
            ));
            uses.push((format!("{}.{}", inner.table, inner_column), false));
            if let Some(r) = residual {
                for c in r.referenced_columns() {
                    uses.push((c.to_string(), false));
                }
            }
        }
        PhysOp::Filter { predicate } => {
            for c in predicate.referenced_columns() {
                uses.push((c.to_string(), false));
            }
        }
        PhysOp::HashAggregate { group, .. } => {
            for &g in group {
                uses.push((plan.children[0].schema.field(g).qualified_name(), true));
            }
        }
        _ => {}
    }
    AncestorUse {
        uses,
        weight: plan.node_count(),
    }
}

/// Candidates at a site: ancestor-used columns present in the site's
/// output schema.
fn collect_uses(site_child: &PhysPlan, ancestors: &[AncestorUse]) -> Vec<ColumnUse> {
    let mut out: Vec<ColumnUse> = Vec::new();
    for anc in ancestors {
        for (col, grouping) in &anc.uses {
            if site_child.schema.index_of(col).is_err() {
                continue;
            }
            match out
                .iter_mut()
                .find(|u| &u.column == col && u.grouping == *grouping)
            {
                Some(existing) => existing.affected = existing.affected.max(anc.weight),
                None => out.push(ColumnUse {
                    column: col.clone(),
                    affected: anc.weight,
                    grouping: *grouping,
                }),
            }
        }
    }
    out
}

/// The paper's inaccuracy-potential rules applied to one candidate.
fn potential_for(
    site_child: &PhysPlan,
    u: &ColumnUse,
    catalog: &Catalog,
    staleness: &HashMap<String, f64>,
) -> InaccuracyLevel {
    // Distinct counts at any intermediate point are always high (§2.5).
    if u.grouping && !matches!(site_child.op, PhysOp::SeqScan { filter: None, .. }) {
        return InaccuracyLevel::High;
    }
    // Base level: the owning table's histogram class.
    let (table, bare) = match u.column.rsplit_once('.') {
        Some((t, b)) => (t.to_string(), b.to_string()),
        None => return InaccuracyLevel::High,
    };
    let mut level = match catalog.table(&table) {
        Ok(entry) => match entry.stats.as_ref().and_then(|s| s.columns.get(&bare)) {
            Some(cs) => match cs.histogram_kind {
                // The "serial"-class histograms (§2.5): accurate enough
                // that their estimates start at low potential.
                Some(
                    HistogramKind::EndBiased | HistogramKind::MaxDiff | HistogramKind::VOptimal,
                ) => InaccuracyLevel::Low,
                Some(HistogramKind::EquiWidth | HistogramKind::EquiDepth) => {
                    InaccuracyLevel::Medium
                }
                None => InaccuracyLevel::High,
            },
            None => InaccuracyLevel::High,
        },
        Err(_) => InaccuracyLevel::High,
    };
    // Staleness bump.
    if staleness.get(&table).copied().unwrap_or(1.0) > 0.1 {
        level = level.bump();
    }
    // Walk the site's subtree: selection/join rules.
    site_child.walk(&mut |n| {
        let preds: Vec<&mq_expr::Expr> = match &n.op {
            PhysOp::SeqScan {
                filter: Some(p), ..
            }
            | PhysOp::Filter { predicate: p } => vec![p],
            PhysOp::IndexScan { residual, .. } => residual.iter().collect(),
            _ => Vec::new(),
        };
        for p in preds {
            if p.contains_udf() {
                level = InaccuracyLevel::High;
            } else {
                let mut cols: Vec<_> = p.referenced_columns();
                cols.sort();
                cols.dedup();
                if cols.len() >= 2 {
                    level = level.bump();
                }
            }
        }
        // Joins below the site: non-key equi-joins bump a level.
        if let PhysOp::HashJoin { build_keys, .. } = &n.op {
            let key_side_unique = build_keys.iter().all(|&k| {
                let f = n.children[0].schema.field(k);
                is_unique_column(catalog, f)
            });
            if !key_side_unique {
                level = level.bump();
            }
        }
    });
    level
}

fn is_unique_column(catalog: &Catalog, field: &mq_common::Field) -> bool {
    let Some(q) = &field.qualifier else {
        return false;
    };
    let Ok(entry) = catalog.table(q) else {
        return false;
    };
    let Some(stats) = &entry.stats else {
        return false;
    };
    match stats.columns.get(field.name.as_ref()) {
        Some(cs) => stats.rows > 0 && cs.distinct >= 0.9 * stats.rows as f64,
        None => false,
    }
}

/// Remove a dropped candidate's spec from the plan.
fn remove_spec(plan: &mut PhysPlan, cand: &CandidateInfo) {
    plan.walk_mut(&mut |n| {
        if let PhysOp::StatsCollector { specs, site } = &mut n.op {
            if site == &cand.site {
                specs.retain(|s| !(s.column == cand.column && s.histogram == cand.histogram));
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Row, SimClock, Value};
    use mq_expr::{cmp, col, lit, CmpOp};
    use mq_optimizer::Optimizer;
    use mq_plan::LogicalPlan;
    use mq_storage::Storage;

    fn setup(analyze: bool) -> (Catalog, Storage, EngineConfig) {
        let cfg = EngineConfig::default();
        let storage = Storage::new(&cfg, SimClock::new());
        let cat = Catalog::new();
        cat.create_table(
            &storage,
            "f",
            vec![
                ("fk1", DataType::Int),
                ("fk2", DataType::Int),
                ("g", DataType::Int),
                ("v", DataType::Int),
            ],
        )
        .unwrap();
        cat.create_table(
            &storage,
            "d1",
            vec![("pk", DataType::Int), ("x", DataType::Int)],
        )
        .unwrap();
        cat.create_table(
            &storage,
            "d2",
            vec![("pk", DataType::Int), ("y", DataType::Int)],
        )
        .unwrap();
        for i in 0..3000i64 {
            cat.insert_row(
                &storage,
                "f",
                Row::new(vec![
                    Value::Int(i % 40),
                    Value::Int(i % 25),
                    Value::Int(i % 10),
                    Value::Int(i % 100),
                ]),
            )
            .unwrap();
        }
        for i in 0..40i64 {
            cat.insert_row(&storage, "d1", Row::new(vec![Value::Int(i), Value::Int(i)]))
                .unwrap();
        }
        for i in 0..25i64 {
            cat.insert_row(&storage, "d2", Row::new(vec![Value::Int(i), Value::Int(i)]))
                .unwrap();
        }
        if analyze {
            for t in ["f", "d1", "d2"] {
                cat.analyze(&storage, t, HistogramKind::MaxDiff, 16, 256, 3)
                    .unwrap();
            }
        }
        (cat, storage, cfg)
    }

    fn query() -> LogicalPlan {
        LogicalPlan::scan_filtered(
            "f",
            mq_expr::and(vec![
                cmp(CmpOp::Lt, col("f.v"), lit(50i64)),
                cmp(CmpOp::Ge, col("f.v"), lit(10i64)),
            ]),
        )
        .join(LogicalPlan::scan("d1"), vec![("f.fk1", "d1.pk")])
        .join(LogicalPlan::scan("d2"), vec![("f.fk2", "d2.pk")])
        .aggregate(
            vec!["f.g"],
            vec![mq_plan::AggExpr {
                func: mq_plan::AggFunc::Avg,
                arg: Some(col("f.v")),
                name: "avg_v".into(),
            }],
        )
    }

    #[test]
    fn collectors_inserted_at_build_sites() {
        let (cat, st, cfg) = setup(true);
        let opt = Optimizer::new(cfg.clone());
        let mut result = opt.optimize(&query(), &cat, &st).unwrap();
        let report = insert_collectors(&mut result.plan, &cat, &cfg).unwrap();
        let collectors = result.plan.collectors();
        assert!(!collectors.is_empty(), "plan:\n{}", result.plan);
        assert_eq!(collectors.len(), report.sites.len());
        // Ids must be fresh and unique after insertion.
        let mut ids = Vec::new();
        result.plan.walk(&mut |n| ids.push(n.id.0));
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
    }

    #[test]
    fn multi_attribute_filter_earns_histogram_candidates() {
        let (cat, st, cfg) = setup(true);
        let opt = Optimizer::new(cfg.clone());
        // Two-column (correlated) filter → bumped potential → the join
        // attribute histogram should be kept.
        let q = LogicalPlan::scan_filtered(
            "f",
            mq_expr::and(vec![
                cmp(CmpOp::Lt, col("f.v"), lit(50i64)),
                cmp(CmpOp::Lt, col("f.g"), lit(5i64)),
            ]),
        )
        .join(LogicalPlan::scan("d1"), vec![("f.fk1", "d1.pk")])
        .join(LogicalPlan::scan("d2"), vec![("f.fk2", "d2.pk")]);
        let mut result = opt.optimize(&q, &cat, &st).unwrap();
        let report = insert_collectors(&mut result.plan, &cat, &cfg).unwrap();
        assert!(
            report.kept.iter().any(|c| c.histogram),
            "kept: {:?}",
            report.kept
        );
        for c in &report.kept {
            assert!(c.level >= InaccuracyLevel::Medium);
        }
    }

    #[test]
    fn group_by_earns_distinct_candidate() {
        let (cat, st, cfg) = setup(true);
        let opt = Optimizer::new(cfg.clone());
        let mut result = opt.optimize(&query(), &cat, &st).unwrap();
        let report = insert_collectors(&mut result.plan, &cat, &cfg).unwrap();
        let has_distinct_spec = {
            let mut found = false;
            result.plan.walk(&mut |n| {
                if let PhysOp::StatsCollector { specs, .. } = &n.op {
                    if specs.iter().any(|s| s.distinct) {
                        found = true;
                    }
                }
            });
            found
        };
        assert!(
            has_distinct_spec || report.kept.iter().any(|c| !c.histogram),
            "report: {report:?}"
        );
    }

    #[test]
    fn unanalyzed_tables_are_high_potential() {
        let (cat, st, cfg) = setup(false);
        let opt = Optimizer::new(cfg.clone());
        let mut result = opt.optimize(&query(), &cat, &st).unwrap();
        let report = insert_collectors(&mut result.plan, &cat, &cfg).unwrap();
        for c in &report.kept {
            assert_eq!(c.level, InaccuracyLevel::High, "{c:?}");
        }
    }

    #[test]
    fn tiny_mu_drops_candidates() {
        let (cat, st, _) = setup(true);
        // No collection budget at all.
        let cfg = EngineConfig {
            mu: 0.0,
            ..EngineConfig::default()
        };
        let opt = Optimizer::new(cfg.clone());
        let mut result = opt.optimize(&query(), &cat, &st).unwrap();
        let report = insert_collectors(&mut result.plan, &cat, &cfg).unwrap();
        assert!(report.kept.is_empty(), "kept: {:?}", report.kept);
        // Collectors still exist (cardinality is free) but carry no specs.
        result.plan.walk(&mut |n| {
            if let PhysOp::StatsCollector { specs, .. } = &n.op {
                assert!(specs.is_empty());
            }
        });
    }

    #[test]
    fn levels_order_and_bump() {
        assert!(InaccuracyLevel::Low < InaccuracyLevel::Medium);
        assert!(InaccuracyLevel::Medium < InaccuracyLevel::High);
        assert_eq!(InaccuracyLevel::Low.bump(), InaccuracyLevel::Medium);
        assert_eq!(InaccuracyLevel::High.bump(), InaccuracyLevel::High);
    }
}

#[cfg(test)]
mod ordering_tests {
    use super::*;

    #[test]
    fn effectiveness_ordering_prefers_high_potential_then_reach() {
        // Synthetic candidates exercising the drop ordering directly.
        let mk = |site: &str, level, affected, cost_ms| CandidateInfo {
            site: site.into(),
            column: format!("{site}.c"),
            histogram: true,
            level,
            affected,
            cost_ms,
        };
        let mut report = SciaReport {
            budget_ms: 3.0,
            kept: vec![
                mk("a", InaccuracyLevel::High, 10, 2.0),
                mk("b", InaccuracyLevel::Medium, 50, 2.0),
                mk("c", InaccuracyLevel::High, 2, 2.0),
            ],
            ..SciaReport::default()
        };
        // Reproduce the budget-enforcement logic: least effective first
        // = lowest level, then smallest affected.
        let mut order: Vec<usize> = (0..report.kept.len()).collect();
        order.sort_by(|&x, &y| {
            let (cx, cy) = (&report.kept[x], &report.kept[y]);
            cx.level
                .cmp(&cy.level)
                .then(cx.affected.cmp(&cy.affected))
                .then(cy.cost_ms.total_cmp(&cx.cost_ms))
        });
        // Medium ("b") must be dropped before either High candidate,
        // and among Highs the smaller reach ("c") goes first.
        assert_eq!(report.kept[order[0]].site, "b");
        assert_eq!(report.kept[order[1]].site, "c");
        assert_eq!(report.kept[order[2]].site, "a");
        report.budget_ms = 0.0; // silence unused warnings
    }

    #[test]
    fn report_defaults_are_empty() {
        let r = SciaReport::default();
        assert!(r.sites.is_empty());
        assert!(r.kept.is_empty());
        assert!(r.dropped.is_empty());
    }
}
