//! Improved estimates from runtime observations (§2.2–§2.3).
//!
//! Observed statistics are *facts*; the optimizer's annotations are
//! guesses. This module rebuilds the annotation set of the remainder of
//! a plan from the observations: a node whose subtree contains an
//! observed collector has its cardinality scaled by the observation
//! ratio (`observed / estimated`), compounding multiplicatively up the
//! tree — the inverse of how the estimation error compounded in the
//! first place. Costs and times are then re-derived with the current
//! memory grants.

use std::collections::HashMap;

use mq_common::EngineConfig;
use mq_exec::ObservedStats;
use mq_optimizer::recost;
use mq_plan::{NodeId, PhysPlan};

/// Accumulates observations and produces improved plans.
#[derive(Debug, Default, Clone)]
pub struct ImprovedEstimates {
    observations: HashMap<NodeId, ObservedStats>,
}

impl ImprovedEstimates {
    /// Empty set of observations.
    pub fn new() -> ImprovedEstimates {
        ImprovedEstimates::default()
    }

    /// Record a collector's report.
    pub fn record(&mut self, stats: ObservedStats) {
        self.observations.insert(stats.node, stats);
    }

    /// Observations recorded so far.
    pub fn observations(&self) -> &HashMap<NodeId, ObservedStats> {
        &self.observations
    }

    /// The observation at a specific collector, if any.
    pub fn at(&self, node: NodeId) -> Option<&ObservedStats> {
        self.observations.get(&node)
    }

    /// Produce a copy of `orig` with improved annotations: observed
    /// nodes get exact cardinalities; ancestors scale by the
    /// observation ratios of their subtrees; costs/times re-derived.
    pub fn improved_plan(&self, orig: &PhysPlan, cfg: &EngineConfig) -> PhysPlan {
        let mut plan = orig.clone();
        self.apply(&mut plan);
        recost(&mut plan, cfg);
        plan
    }

    /// Apply improvements in place (no recosting).
    fn apply(&self, plan: &mut PhysPlan) -> f64 {
        // Returns the cumulative observation ratio of this subtree.
        let mut ratio = 1.0;
        for c in &mut plan.children {
            ratio *= self.apply(c);
        }
        if let Some(obs) = self.observations.get(&plan.id) {
            // Exact: override and restart the ratio chain from here.
            let orig_rows = plan.annot.est_rows.max(1e-9);
            plan.annot.est_rows = obs.rows as f64;
            if obs.avg_row_bytes > 0.0 {
                plan.annot.est_row_bytes = obs.avg_row_bytes;
            }
            return obs.rows as f64 / orig_rows;
        }
        if ratio != 1.0 {
            plan.annot.est_rows = (plan.annot.est_rows * ratio).max(0.0);
        }
        ratio
    }

    /// Improved remaining time: total of the improved plan minus the
    /// parts already executed (`completed` node ids).
    pub fn remaining_ms(plan: &PhysPlan, completed: &std::collections::HashSet<NodeId>) -> f64 {
        let mut total = 0.0;
        plan.walk(&mut |n| {
            if !completed.contains(&n.id) {
                total += n.annot.est_time_ms;
            }
        });
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::{PhysOp, ScanSpec};

    fn scan(name: &str, rows: f64) -> PhysPlan {
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: name.into(),
                    file: FileId(0),
                    pages: 10,
                    rows: rows as u64,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(name, "a", DataType::Int)]).unwrap(),
        );
        p.annot.est_rows = rows;
        p.annot.est_row_bytes = 20.0;
        p
    }

    fn collector(input: PhysPlan) -> PhysPlan {
        let schema = input.schema.clone();
        let mut p = PhysPlan::new(
            PhysOp::StatsCollector {
                specs: vec![],
                site: "t".into(),
            },
            vec![input],
            schema,
        );
        p.annot.est_rows = p.children[0].annot.est_rows;
        p.annot.est_row_bytes = 20.0;
        p
    }

    fn join(l: PhysPlan, r: PhysPlan, rows: f64) -> PhysPlan {
        let schema = l.schema.join(&r.schema);
        let mut p = PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![l, r],
            schema,
        );
        p.annot.est_rows = rows;
        p.annot.est_row_bytes = 40.0;
        p
    }

    fn obs(node: NodeId, rows: u64) -> ObservedStats {
        ObservedStats {
            node,
            rows,
            avg_row_bytes: 20.0,
            columns: HashMap::new(),
            complete: true,
        }
    }

    #[test]
    fn observation_scales_ancestors() {
        // join(collector(scan a, est 1000), scan b) est 5000.
        let mut plan = join(collector(scan("a", 1000.0)), scan("b", 200.0), 5000.0);
        plan.assign_ids();
        let collector_id = plan.children[0].id;

        let mut imp = ImprovedEstimates::new();
        imp.record(obs(collector_id, 250)); // 4× fewer rows than estimated
        let cfg = EngineConfig::default();
        let improved = imp.improved_plan(&plan, &cfg);
        // Collector: exact 250. Join: scaled 5000 × 0.25 = 1250.
        assert!((improved.children[0].annot.est_rows - 250.0).abs() < 1e-9);
        assert!((improved.annot.est_rows - 1250.0).abs() < 1e-6);
        // Unobserved scan b untouched.
        assert!((improved.children[1].annot.est_rows - 200.0).abs() < 1e-9);
        // Times re-derived.
        assert!(improved.annot.est_total_time_ms > 0.0);
    }

    #[test]
    fn nested_observations_compound() {
        // join2(collector2(join1(collector1(a), b)), c)
        let inner = join(collector(scan("a", 100.0)), scan("b", 50.0), 1000.0);
        let mid = collector(inner);
        let mut plan = join(mid, scan("c", 10.0), 8000.0);
        plan.assign_ids();
        let c2 = plan.children[0].id;
        let c1 = plan.children[0].children[0].children[0].id;

        let mut imp = ImprovedEstimates::new();
        // c1 observed 2× the estimate; c2 observed exactly (overriding
        // the chain below it).
        imp.record(obs(c1, 200));
        imp.record(obs(c2, 500));
        let cfg = EngineConfig::default();
        let improved = imp.improved_plan(&plan, &cfg);
        // c2 exact 500 → root scales by 500/1000 = 0.5 → 4000.
        assert!(
            (improved.annot.est_rows - 4000.0).abs() < 1e-6,
            "{}",
            improved.annot.est_rows
        );
    }

    #[test]
    fn remaining_excludes_completed() {
        let cfg = EngineConfig::default();
        let mut plan = join(scan("a", 100.0), scan("b", 100.0), 100.0);
        plan.assign_ids();
        recost(&mut plan, &cfg);
        let all: f64 = ImprovedEstimates::remaining_ms(&plan, &Default::default());
        let mut done = std::collections::HashSet::new();
        done.insert(plan.children[0].id);
        let rem = ImprovedEstimates::remaining_ms(&plan, &done);
        assert!(rem < all);
        assert!(rem > 0.0);
    }
}
