//! Checkpoint manifests: the durable record of a query's completed
//! segments.
//!
//! Kabra & DeWitt's plan-switch protocol is a checkpoint/restart
//! protocol in disguise: every accepted switch materializes the cut
//! subtree into a temp table with *exact* statistics and re-plans the
//! remainder query over it. The manifest makes that durable capital
//! recoverable after a crash: after each segment's temp table is
//! materialized **and registered in the catalog**, the engine appends
//! a completion record (segment id, temp-table name, row count,
//! content fingerprint, remainder-plan hash). The ordering rule is the
//! classic one — *data before manifest record* — so manifest state
//! always trails durable data: a record present implies the temp
//! table it names was fully written and registered; a crash between
//! the two leaves at worst an unrecorded (sweepable) table, never a
//! recorded-but-missing one.
//!
//! In a production system the manifest would be a write-ahead log next
//! to the catalog; here it is an engine-owned in-memory store (the
//! simulated "disk" dies with the process anyway, so a simulated kill
//! abandons the query's in-flight state but keeps the store — exactly
//! the durability split a real WAL would give). The remainder plan is
//! kept verbatim alongside its hash; a real WAL would serialize the
//! plan into the record and the hash would guard the bytes.

use std::collections::HashMap;
use std::sync::Arc;

use mq_plan::LogicalPlan;
use parking_lot::Mutex;

use crate::ReoptMode;

/// One completed-segment record. Appended only after the temp table it
/// names is fully materialized and catalog-registered.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// 1-based completion index within the query.
    pub segment: u32,
    /// Catalog name of the materialized temp table.
    pub temp_table: String,
    /// Exact row count written.
    pub rows: u64,
    /// Order-insensitive content fingerprint of the written rows
    /// (see `mq_exec::rows_fingerprint`).
    pub fingerprint: u64,
    /// Hash of the remainder plan to resume from if this is the last
    /// valid record (guards the stored plan against tampering the way
    /// a WAL record checksum would guard its bytes).
    pub remainder_hash: u64,
}

/// The per-query manifest: header plus append-only completion records.
#[derive(Debug, Clone)]
pub struct QueryManifest {
    /// Engine query id (the recovery key).
    pub query_id: u64,
    /// Re-optimization mode the query ran under (resume uses it too).
    pub mode: ReoptMode,
    /// Temp prefix of the generation that wrote this manifest; the
    /// sweep after a crash reclaims *this* prefix's unrecorded
    /// leftovers and nothing else.
    pub temp_prefix: String,
    /// The plan to resume from when no checkpoint validates.
    pub original: LogicalPlan,
    /// Completed-segment records, in completion order.
    pub records: Vec<CheckpointRecord>,
    /// Remainder plans, parallel to `records` (`remainders[i]` is what
    /// resumes execution after `records[..=i]` are salvaged).
    pub remainders: Vec<LogicalPlan>,
    /// Temp tables salvaged from *earlier* generations that the
    /// `original` plan above references. They are live inputs — a
    /// sweep must never reclaim them, and they are only dropped once
    /// the query finally completes.
    pub protected: Vec<String>,
    /// 0 for the original run; n for the n-th recovery resume.
    pub generation: u32,
}

impl QueryManifest {
    /// Append one completion record with its remainder plan.
    pub fn append(&mut self, record: CheckpointRecord, remainder: LogicalPlan) {
        debug_assert_eq!(record.segment as usize, self.records.len() + 1);
        debug_assert_eq!(record.remainder_hash, plan_hash(&remainder));
        self.records.push(record);
        self.remainders.push(remainder);
    }
}

/// Deterministic structural hash of a logical plan (FNV-1a over its
/// debug rendering — plans derive a canonical `Debug`).
pub fn plan_hash(plan: &LogicalPlan) -> u64 {
    let repr = format!("{plan:?}");
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in repr.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Engine-owned store of in-flight query manifests, keyed by query id.
/// Cheap to clone (shared handle).
#[derive(Debug, Clone, Default)]
pub struct ManifestStore {
    inner: Arc<Mutex<HashMap<u64, QueryManifest>>>,
}

impl ManifestStore {
    pub fn new() -> ManifestStore {
        ManifestStore::default()
    }

    /// Open a manifest for a (re)starting query. A fresh query gets an
    /// empty generation-0 manifest. When a manifest for `query_id`
    /// already exists (a recovery resume), the new generation rolls
    /// over: the old generation's *recorded* temp tables join the
    /// protected set — they are inputs of `original` now — and its
    /// records are cleared so new checkpoints accumulate from scratch.
    pub fn begin(
        &self,
        query_id: u64,
        original: LogicalPlan,
        mode: ReoptMode,
        temp_prefix: String,
    ) {
        let mut map = self.inner.lock();
        match map.get_mut(&query_id) {
            Some(m) => {
                let recorded: Vec<String> =
                    m.records.iter().map(|r| r.temp_table.clone()).collect();
                m.protected.extend(recorded);
                m.records.clear();
                m.remainders.clear();
                m.original = original;
                m.mode = mode;
                m.temp_prefix = temp_prefix;
                m.generation += 1;
            }
            None => {
                map.insert(
                    query_id,
                    QueryManifest {
                        query_id,
                        mode,
                        temp_prefix,
                        original,
                        records: Vec::new(),
                        remainders: Vec::new(),
                        protected: Vec::new(),
                        generation: 0,
                    },
                );
            }
        }
    }

    /// Append a completion record to a query's manifest (no-op if the
    /// manifest is gone — e.g. appended after the query was reaped).
    pub fn append(&self, query_id: u64, record: CheckpointRecord, remainder: LogicalPlan) {
        if let Some(m) = self.inner.lock().get_mut(&query_id) {
            m.append(record, remainder);
        }
    }

    /// Snapshot a query's manifest (recovery reads this).
    pub fn get(&self, query_id: u64) -> Option<QueryManifest> {
        self.inner.lock().get(&query_id).cloned()
    }

    /// Remove a finished query's manifest, returning it. Called on
    /// every *non-crash* exit; a crash deliberately leaves the
    /// manifest in place for [`crate::Engine::recover`].
    pub fn remove(&self, query_id: u64) -> Option<QueryManifest> {
        self.inner.lock().remove(&query_id)
    }

    /// Query ids with a manifest still open (crashed or in flight).
    pub fn open_queries(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.inner.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> LogicalPlan {
        LogicalPlan::scan("t")
    }

    #[test]
    fn begin_append_remove_lifecycle() {
        let store = ManifestStore::new();
        store.begin(7, plan(), ReoptMode::Full, "tmp_reopt_q7_".into());
        let remainder = LogicalPlan::scan("tmp_reopt_q7_1");
        store.append(
            7,
            CheckpointRecord {
                segment: 1,
                temp_table: "tmp_reopt_q7_1".into(),
                rows: 10,
                fingerprint: 42,
                remainder_hash: plan_hash(&remainder),
            },
            remainder,
        );
        let m = store.get(7).expect("manifest open");
        assert_eq!(m.generation, 0);
        assert_eq!(m.records.len(), 1);
        assert_eq!(m.remainders.len(), 1);
        assert!(m.protected.is_empty());
        assert_eq!(store.open_queries(), vec![7]);
        assert!(store.remove(7).is_some());
        assert!(store.get(7).is_none());
    }

    #[test]
    fn resume_generation_protects_prior_records() {
        let store = ManifestStore::new();
        store.begin(3, plan(), ReoptMode::Full, "tmp_reopt_q3_".into());
        let remainder = LogicalPlan::scan("tmp_reopt_q3_1");
        store.append(
            3,
            CheckpointRecord {
                segment: 1,
                temp_table: "tmp_reopt_q3_1".into(),
                rows: 5,
                fingerprint: 1,
                remainder_hash: plan_hash(&remainder),
            },
            remainder.clone(),
        );
        // Crash; recovery resumes with a new generation.
        store.begin(3, remainder, ReoptMode::Full, "tmp_reopt_q3r1_".into());
        let m = store.get(3).expect("manifest survives the crash");
        assert_eq!(m.generation, 1);
        assert_eq!(m.temp_prefix, "tmp_reopt_q3r1_");
        assert!(m.records.is_empty(), "new generation checkpoints afresh");
        assert_eq!(m.protected, vec!["tmp_reopt_q3_1".to_string()]);
    }

    #[test]
    fn plan_hash_distinguishes_plans() {
        let a = plan_hash(&LogicalPlan::scan("a"));
        let b = plan_hash(&LogicalPlan::scan("b"));
        assert_ne!(a, b);
        assert_eq!(a, plan_hash(&LogicalPlan::scan("a")));
    }
}
