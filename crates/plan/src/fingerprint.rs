//! Canonical sub-plan fingerprints for the cross-query cache.
//!
//! The materialization cache and the statistics feedback store key
//! their entries by a structural hash of the *producing sub-plan*. A
//! plain hash of the tree (like `plan_hash` over `Debug` in the core
//! crate) would split keys on irrelevant differences — collector and
//! exchange decoration, conjunct order inside a predicate, the
//! build/probe orientation of a hash join — so this module renders a
//! plan to a *canonical string* first and FNV-1a-hashes that:
//!
//! * [`PhysOp::StatsCollector`] and [`PhysOp::Exchange`] are
//!   transparent: they pass rows through unchanged, so the canonical
//!   form is their child's;
//! * predicate conjuncts (scan filters, residuals, standalone filters)
//!   are rendered individually and sorted;
//! * a hash join's two children are rendered and then *sorted* as
//!   strings, with the join keys rendered as name pairs (each pair
//!   internally sorted) — `A ⋈ B` and `B ⋈ A` fingerprint equally;
//! * everything else renders operator + operands + children in order.
//!
//! A deliberate limitation: a spliced [`PhysOp::CachedScan`] renders as
//! its own token (`cached:<fp>`), not as the sub-tree it replaced, so a
//! parent of a spliced node does not fingerprint-match its fully-inline
//! form. The engine probes top-down (largest match wins), which makes
//! this case unreachable in practice.

use crate::physical::{PhysOp, PhysPlan};

/// FNV-1a over a byte string (same constants as the manifest's
/// `plan_hash`, different input domain).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Canonical fingerprint of the sub-plan rooted at `plan`.
pub fn subplan_fingerprint(plan: &PhysPlan) -> u64 {
    fnv1a(canonical_form(plan).as_bytes())
}

/// Render a predicate as its sorted, individually-rendered conjuncts.
fn canon_predicate(expr: &mq_expr::Expr) -> String {
    let mut parts: Vec<String> = expr.conjuncts().iter().map(|c| c.to_string()).collect();
    parts.sort_unstable();
    parts.join("&")
}

fn canon_opt_predicate(expr: &Option<mq_expr::Expr>) -> String {
    expr.as_ref().map(canon_predicate).unwrap_or_default()
}

/// The canonical string of a sub-plan (exposed for tests; hash this
/// with FNV-1a to get the fingerprint).
pub fn canonical_form(plan: &PhysPlan) -> String {
    match &plan.op {
        // Transparent decoration: rows pass through unchanged.
        PhysOp::StatsCollector { .. } | PhysOp::Exchange { .. } => {
            canonical_form(&plan.children[0])
        }
        PhysOp::SeqScan { spec, filter } => {
            format!("seq({};{})", spec.table, canon_opt_predicate(filter))
        }
        PhysOp::IndexScan {
            spec,
            column,
            lo,
            hi,
            residual,
            ..
        } => format!(
            "idx({};{column};{lo:?};{hi:?};{})",
            spec.table,
            canon_opt_predicate(residual)
        ),
        PhysOp::Filter { predicate } => format!(
            "filter({};{})",
            canon_predicate(predicate),
            canonical_form(&plan.children[0])
        ),
        PhysOp::Project { exprs } => {
            let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{n}={e}")).collect();
            format!(
                "proj({};{})",
                cols.join(","),
                canonical_form(&plan.children[0])
            )
        }
        PhysOp::HashJoin {
            build_keys,
            probe_keys,
        } => {
            // Join keys as (name, name) pairs, each pair internally
            // sorted, the pair list sorted — orientation-insensitive.
            let mut pairs: Vec<String> = build_keys
                .iter()
                .zip(probe_keys)
                .map(|(&b, &p)| {
                    let bn = plan.children[0].schema.field(b).qualified_name();
                    let pn = plan.children[1].schema.field(p).qualified_name();
                    if bn <= pn {
                        format!("{bn}={pn}")
                    } else {
                        format!("{pn}={bn}")
                    }
                })
                .collect();
            pairs.sort_unstable();
            let mut kids = [
                canonical_form(&plan.children[0]),
                canonical_form(&plan.children[1]),
            ];
            kids.sort_unstable();
            format!("hj({};{};{})", pairs.join(","), kids[0], kids[1])
        }
        PhysOp::IndexNLJoin {
            outer_key,
            inner,
            inner_column,
            residual,
            ..
        } => {
            let outer_name = plan.children[0].schema.field(*outer_key).qualified_name();
            format!(
                "inlj({outer_name}={}.{inner_column};{};{})",
                inner.table,
                canon_opt_predicate(residual),
                canonical_form(&plan.children[0])
            )
        }
        PhysOp::Sort { keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|(k, asc)| {
                    format!(
                        "{}{}",
                        plan.children[0].schema.field(*k).qualified_name(),
                        if *asc { "+" } else { "-" }
                    )
                })
                .collect();
            format!(
                "sort({};{})",
                ks.join(","),
                canonical_form(&plan.children[0])
            )
        }
        PhysOp::HashAggregate { group, aggs } => {
            let gs: Vec<String> = group
                .iter()
                .map(|&g| plan.children[0].schema.field(g).qualified_name())
                .collect();
            let aspecs: Vec<String> = aggs.iter().map(|a| format!("{a:?}")).collect();
            format!(
                "agg({};{};{})",
                gs.join(","),
                aspecs.join(","),
                canonical_form(&plan.children[0])
            )
        }
        PhysOp::Limit { n } => format!("limit({n};{})", canonical_form(&plan.children[0])),
        PhysOp::CachedScan { fingerprint, .. } => format!("cached:{fingerprint:016x}"),
    }
}

/// All base tables a sub-plan reads, sorted and deduplicated. The
/// cache uses these as the entry's invalidation dependencies; a
/// sub-plan that reads a temp or cache table is not a pure function of
/// base data and must not be promoted.
pub fn base_tables(plan: &PhysPlan) -> Vec<String> {
    let mut out = Vec::new();
    plan.walk(&mut |n| match &n.op {
        PhysOp::SeqScan { spec, .. }
        | PhysOp::IndexScan { spec, .. }
        | PhysOp::CachedScan { spec, .. } => out.push(spec.table.clone()),
        PhysOp::IndexNLJoin { inner, .. } => out.push(inner.table.clone()),
        _ => {}
    });
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{PhysOp, PhysPlan, ScanSpec};
    use mq_common::{DataType, Field, FileId, Schema};

    fn leaf(table: &str, filter: Option<mq_expr::Expr>) -> PhysPlan {
        PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: table.into(),
                    file: FileId(0),
                    pages: 10,
                    rows: 100,
                },
                filter,
            },
            vec![],
            Schema::new(vec![Field::qualified(table, "k", DataType::Int)]).unwrap(),
        )
    }

    fn join(l: PhysPlan, r: PhysPlan) -> PhysPlan {
        let schema = l.schema.join(&r.schema);
        PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![l, r],
            schema,
        )
    }

    #[test]
    fn join_orientation_is_normalized() {
        let ab = join(leaf("a", None), leaf("b", None));
        let ba = join(leaf("b", None), leaf("a", None));
        assert_eq!(subplan_fingerprint(&ab), subplan_fingerprint(&ba));
        assert_ne!(
            subplan_fingerprint(&ab),
            subplan_fingerprint(&join(leaf("a", None), leaf("c", None)))
        );
    }

    #[test]
    fn conjunct_order_is_normalized() {
        let p1 = mq_expr::and(vec![
            mq_expr::cmp(mq_expr::CmpOp::Lt, mq_expr::col("k"), mq_expr::lit(5i64)),
            mq_expr::cmp(mq_expr::CmpOp::Gt, mq_expr::col("k"), mq_expr::lit(1i64)),
        ]);
        let p2 = mq_expr::and(vec![
            mq_expr::cmp(mq_expr::CmpOp::Gt, mq_expr::col("k"), mq_expr::lit(1i64)),
            mq_expr::cmp(mq_expr::CmpOp::Lt, mq_expr::col("k"), mq_expr::lit(5i64)),
        ]);
        assert_eq!(
            subplan_fingerprint(&leaf("t", Some(p1))),
            subplan_fingerprint(&leaf("t", Some(p2)))
        );
    }

    #[test]
    fn collectors_and_exchanges_are_transparent() {
        let base = join(leaf("a", None), leaf("b", None));
        let schema = base.schema.clone();
        let wrapped = PhysPlan::new(
            PhysOp::StatsCollector {
                specs: vec![],
                site: "s".into(),
            },
            vec![base.clone()],
            schema,
        );
        assert_eq!(subplan_fingerprint(&base), subplan_fingerprint(&wrapped));
    }

    #[test]
    fn base_tables_are_sorted_unique() {
        let p = join(join(leaf("b", None), leaf("a", None)), leaf("a", None));
        assert_eq!(base_tables(&p), vec!["a".to_string(), "b".to_string()]);
    }
}
