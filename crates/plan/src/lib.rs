//! # mq-plan — logical and annotated physical plans
//!
//! * [`logical::LogicalPlan`] — what the frontend (or the TPC-D query
//!   builders) produce and what the optimizer consumes;
//! * [`physical::PhysPlan`] — the executable operator tree. Every node
//!   carries an [`physical::Annotation`]: the optimizer's estimated
//!   cardinality, row width, cost and time. This is the paper's
//!   *annotated query execution plan* (§2.1) — the baseline that
//!   runtime-observed statistics are compared against to detect
//!   sub-optimality;
//! * [`physical::CollectorSpec`] — what a statistics-collector operator
//!   at a given plan point gathers (§2.2/§2.5).

pub mod fingerprint;
pub mod logical;
pub mod physical;

pub use fingerprint::{base_tables, subplan_fingerprint};
pub use logical::{AggExpr, AggFunc, LogicalPlan};
pub use physical::{
    Annotation, CollectorSpec, CostEst, ExchangeMode, NodeId, PhysOp, PhysPlan, ScanSpec,
};
