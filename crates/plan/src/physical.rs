//! Annotated physical plans.
//!
//! The optimizer emits a [`PhysPlan`] tree whose every node carries an
//! [`Annotation`] — estimated cardinality, row width, I/O and CPU cost,
//! and time. This is exactly the paper's *annotated query execution
//! plan* (§2.1): "the plan produced by the optimizer should include
//! information about the optimizer's estimates of the sizes of all the
//! intermediate results in the query, and the execution cost/time for
//! each operator". The Dynamic Re-Optimization controller later
//! compares observed statistics against these annotations.

use std::fmt;

use mq_common::{EngineConfig, FileId, IndexId, Schema, Value};
use mq_expr::Expr;

use crate::logical::AggExpr;

/// Identifies a node within one physical plan (pre-order numbering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op#{}", self.0)
    }
}

/// Estimated physical cost of one operator (excluding children).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostEst {
    /// Page reads + writes.
    pub io_pages: f64,
    /// Tuple-level CPU operations.
    pub cpu_ops: f64,
}

impl CostEst {
    /// Convert to simulated milliseconds. I/O is priced at the read
    /// rate (the model does not distinguish read/write mixes).
    pub fn time_ms(&self, cfg: &EngineConfig) -> f64 {
        self.io_pages * cfg.io_read_ms + self.cpu_ops * cfg.cpu_op_ms
    }

    /// Element-wise sum.
    pub fn plus(&self, other: &CostEst) -> CostEst {
        CostEst {
            io_pages: self.io_pages + other.io_pages,
            cpu_ops: self.cpu_ops + other.cpu_ops,
        }
    }
}

/// Optimizer estimates attached to a plan node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Annotation {
    /// Estimated output cardinality.
    pub est_rows: f64,
    /// Estimated average output row width in bytes.
    pub est_row_bytes: f64,
    /// Estimated cost of this operator alone.
    pub est_cost: CostEst,
    /// Estimated time of this operator alone (ms).
    pub est_time_ms: f64,
    /// Estimated cumulative time of the subtree rooted here (ms).
    pub est_total_time_ms: f64,
    /// Memory granted to this operator by the memory manager (bytes);
    /// zero until allocation runs.
    pub mem_grant_bytes: usize,
}

impl Annotation {
    /// Estimated output size in bytes.
    pub fn est_bytes(&self) -> f64 {
        self.est_rows * self.est_row_bytes
    }

    /// Estimated output size in pages.
    pub fn est_pages(&self, cfg: &EngineConfig) -> f64 {
        (self.est_bytes() / cfg.page_size as f64).max(1.0)
    }
}

/// Static info a physical scan needs about its table.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanSpec {
    /// Catalog table name (for display and re-planning).
    pub table: String,
    /// Backing heap file.
    pub file: FileId,
    /// Page count at planning time.
    pub pages: u64,
    /// Row count at planning time.
    pub rows: u64,
}

/// What one statistics collector gathers for one column (§2.5: the
/// SCIA decides histograms and unique-value counts; cardinality and
/// average tuple size are always collected for free).
#[derive(Debug, Clone, PartialEq)]
pub struct CollectorSpec {
    /// Column (qualified name in the collector's input schema).
    pub column: String,
    /// Build a histogram (reservoir-sampled)?
    pub histogram: bool,
    /// Estimate distinct values (FM sketch)?
    pub distinct: bool,
}

/// A physical operator. Children live in the enclosing [`PhysPlan`];
/// the comments note the expected child count.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Sequential scan (0 children). `filter` is bound to the table
    /// schema and applied in-stream.
    SeqScan {
        /// Table info.
        spec: ScanSpec,
        /// Pushed-down predicate.
        filter: Option<Expr>,
    },
    /// B+-tree index scan (0 children) over `lo ≤ column ≤ hi`.
    IndexScan {
        /// Table info.
        spec: ScanSpec,
        /// Index to probe.
        index: IndexId,
        /// Indexed column (bare name).
        column: String,
        /// Lower bound.
        lo: Option<Value>,
        /// Upper bound.
        hi: Option<Value>,
        /// Residual predicate applied after fetching rows.
        residual: Option<Expr>,
        /// Index height at planning time (cost model input).
        index_height: usize,
        /// Physical clustering of the indexed column in [0, 1].
        clustering: f64,
    },
    /// Filter (1 child).
    Filter {
        /// Bound predicate.
        predicate: Expr,
    },
    /// Projection (1 child).
    Project {
        /// Bound output expressions with names.
        exprs: Vec<(Expr, String)>,
    },
    /// Hybrid hash join (2 children: build = child 0, probe = child 1).
    HashJoin {
        /// Build-side key column positions.
        build_keys: Vec<usize>,
        /// Probe-side key column positions.
        probe_keys: Vec<usize>,
    },
    /// Indexed nested-loops join (1 child: the outer). The inner is
    /// fetched through a B+-tree per outer row.
    IndexNLJoin {
        /// Outer key column position.
        outer_key: usize,
        /// Inner table info.
        inner: ScanSpec,
        /// Index on the inner join column.
        index: IndexId,
        /// Inner join column (bare name).
        inner_column: String,
        /// Index height at planning time.
        index_height: usize,
        /// Physical clustering of the inner column in [0, 1]
        /// (sequential-vs-random blend for the cost model).
        clustering: f64,
        /// Residual predicate over the joined row.
        residual: Option<Expr>,
    },
    /// External merge sort (1 child); keys are (position, ascending).
    Sort {
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Hash aggregation (1 child).
    HashAggregate {
        /// Grouping column positions.
        group: Vec<usize>,
        /// Aggregates (args bound to the child schema).
        aggs: Vec<AggExpr>,
    },
    /// First `n` rows (1 child).
    Limit {
        /// Row limit.
        n: u64,
    },
    /// Statistics collector (1 child): passes rows through unchanged
    /// while observing them (§2.2).
    StatsCollector {
        /// Per-column collection specs.
        specs: Vec<CollectorSpec>,
        /// Human-readable site label for diagnostics.
        site: String,
    },
    /// Exchange (1 child): a partition boundary of the parallel
    /// (partitioned) execution mode. Rows cross between partitionings
    /// here; the partitioned driver runs the segments between exchanges
    /// once per logical hash bucket and merges statistics collectors at
    /// the exchange barrier.
    Exchange {
        /// How rows cross the boundary.
        mode: ExchangeMode,
        /// Partition count the plan was parallelized for.
        partitions: usize,
    },
    /// Scan of a cross-query cached materialization (0 children): the
    /// engine's cache probe splices this over a whole sub-tree whose
    /// fingerprint matched a promoted entry. The cache table is
    /// catalog-registered like any other, so downstream operators (and
    /// re-planning) treat it as an exact-statistics base table.
    CachedScan {
        /// Cache table info (name, file, exact pages/rows).
        spec: ScanSpec,
        /// Canonical fingerprint of the sub-plan this entry replaced
        /// (see [`crate::fingerprint::subplan_fingerprint`]).
        fingerprint: u64,
    },
}

/// How an [`PhysOp::Exchange`] moves rows across a partition boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeMode {
    /// Hash-repartition on the given child-schema column positions.
    Repartition {
        /// Partitioning key columns.
        keys: Vec<usize>,
    },
    /// Concatenate all buckets back into a single stream, in bucket
    /// order (deterministic for any partition count).
    Merge,
    /// Replicate the (small) child to every partition.
    Broadcast,
}

impl ExchangeMode {
    /// Short label for display and events.
    pub fn label(&self) -> &'static str {
        match self {
            ExchangeMode::Repartition { .. } => "repartition",
            ExchangeMode::Merge => "merge",
            ExchangeMode::Broadcast => "broadcast",
        }
    }
}

impl PhysOp {
    /// Short operator name for display.
    pub fn name(&self) -> &'static str {
        match self {
            PhysOp::SeqScan { .. } => "SeqScan",
            PhysOp::IndexScan { .. } => "IndexScan",
            PhysOp::Filter { .. } => "Filter",
            PhysOp::Project { .. } => "Project",
            PhysOp::HashJoin { .. } => "HashJoin",
            PhysOp::IndexNLJoin { .. } => "IndexNLJoin",
            PhysOp::Sort { .. } => "Sort",
            PhysOp::HashAggregate { .. } => "HashAggregate",
            PhysOp::Limit { .. } => "Limit",
            PhysOp::StatsCollector { .. } => "StatsCollector",
            PhysOp::Exchange { .. } => "Exchange",
            PhysOp::CachedScan { .. } => "CachedScan",
        }
    }

    /// Whether this operator consumes its (first) input entirely
    /// before producing output — a pipeline breaker. Hash join blocks
    /// on the *build* child only (its probe streams), which the
    /// executor's phase hooks account for separately.
    pub fn is_blocking(&self) -> bool {
        matches!(self, PhysOp::Sort { .. } | PhysOp::HashAggregate { .. })
    }

    /// Whether this operator holds a memory-hungry data structure whose
    /// grant the memory manager must size (§2.3).
    pub fn is_memory_consumer(&self) -> bool {
        matches!(
            self,
            PhysOp::HashJoin { .. } | PhysOp::Sort { .. } | PhysOp::HashAggregate { .. }
        )
    }
}

/// A physical plan node: operator, children, output schema, estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// Node id, unique within the plan after [`PhysPlan::assign_ids`].
    pub id: NodeId,
    /// The operator.
    pub op: PhysOp,
    /// Children (see [`PhysOp`] for expected counts).
    pub children: Vec<PhysPlan>,
    /// Output schema.
    pub schema: Schema,
    /// Optimizer estimates.
    pub annot: Annotation,
}

impl PhysPlan {
    /// Build a node with a default annotation and unassigned id.
    pub fn new(op: PhysOp, children: Vec<PhysPlan>, schema: Schema) -> PhysPlan {
        PhysPlan {
            id: NodeId(usize::MAX),
            op,
            children,
            schema,
            annot: Annotation::default(),
        }
    }

    /// Assign pre-order ids to every node. Returns the node count.
    pub fn assign_ids(&mut self) -> usize {
        fn rec(p: &mut PhysPlan, next: &mut usize) {
            p.id = NodeId(*next);
            *next += 1;
            for c in &mut p.children {
                rec(c, next);
            }
        }
        let mut next = 0;
        rec(self, &mut next);
        next
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PhysPlan::node_count)
            .sum::<usize>()
    }

    /// Pre-order traversal.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a PhysPlan)) {
        f(self);
        for c in &self.children {
            c.walk(f);
        }
    }

    /// Mutable pre-order traversal.
    pub fn walk_mut(&mut self, f: &mut impl FnMut(&mut PhysPlan)) {
        f(self);
        for c in &mut self.children {
            c.walk_mut(f);
        }
    }

    /// Find a node by id.
    pub fn find(&self, id: NodeId) -> Option<&PhysPlan> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(id))
    }

    /// Find a node by id, mutably.
    pub fn find_mut(&mut self, id: NodeId) -> Option<&mut PhysPlan> {
        if self.id == id {
            return Some(self);
        }
        self.children.iter_mut().find_map(|c| c.find_mut(id))
    }

    /// All statistics-collector nodes, pre-order.
    pub fn collectors(&self) -> Vec<&PhysPlan> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if matches!(p.op, PhysOp::StatsCollector { .. }) {
                out.push(p);
            }
        });
        out
    }

    /// Number of joins below (and including) this node.
    pub fn join_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |p| {
            if matches!(p.op, PhysOp::HashJoin { .. } | PhysOp::IndexNLJoin { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Recompute cumulative times bottom-up from per-node costs.
    pub fn roll_up_times(&mut self, cfg: &EngineConfig) {
        for c in &mut self.children {
            c.roll_up_times(cfg);
        }
        self.annot.est_time_ms = self.annot.est_cost.time_ms(cfg);
        self.annot.est_total_time_ms = self.annot.est_time_ms
            + self
                .children
                .iter()
                .map(|c| c.annot.est_total_time_ms)
                .sum::<f64>();
    }

    /// The operator's operand summary (no name, no annotations), e.g.
    /// `lineitem [l_qty < 10]` for a filtered scan. Shared by the plan
    /// `Display` impl and the EXPLAIN ANALYZE renderer.
    pub fn op_detail(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        match &self.op {
            PhysOp::SeqScan { spec, filter } => {
                let _ = write!(out, "{}", spec.table);
                if let Some(p) = filter {
                    let _ = write!(out, " [{p}]");
                }
            }
            PhysOp::IndexScan {
                spec,
                column,
                lo,
                hi,
                ..
            } => {
                let _ = write!(out, "{} on {column}", spec.table);
                if let Some(lo) = lo {
                    let _ = write!(out, " ≥{lo}");
                }
                if let Some(hi) = hi {
                    let _ = write!(out, " ≤{hi}");
                }
            }
            PhysOp::Filter { predicate } => {
                let _ = write!(out, "[{predicate}]");
            }
            PhysOp::Project { exprs } => {
                let _ = write!(out, "[{} exprs]", exprs.len());
            }
            PhysOp::HashJoin {
                build_keys,
                probe_keys,
            } => {
                let _ = write!(out, "build{build_keys:?} = probe{probe_keys:?}");
            }
            PhysOp::IndexNLJoin {
                inner,
                inner_column,
                outer_key,
                ..
            } => {
                let _ = write!(out, "outer[{outer_key}] = {}.{inner_column}", inner.table);
            }
            PhysOp::Sort { keys } => {
                let _ = write!(out, "{keys:?}");
            }
            PhysOp::HashAggregate { group, aggs } => {
                let _ = write!(out, "group={group:?} aggs={}", aggs.len());
            }
            PhysOp::Limit { n } => {
                let _ = write!(out, "{n}");
            }
            PhysOp::StatsCollector { specs, site } => {
                let cols: Vec<&str> = specs.iter().map(|s| s.column.as_str()).collect();
                let _ = write!(out, "@{site} [{}]", cols.join(", "));
            }
            PhysOp::Exchange { mode, partitions } => {
                let _ = write!(out, "{} P={partitions}", mode.label());
                if let ExchangeMode::Repartition { keys } = mode {
                    let _ = write!(out, " on{keys:?}");
                }
            }
            PhysOp::CachedScan { spec, fingerprint } => {
                let _ = write!(out, "{} fp={fingerprint:016x}", spec.table);
            }
        }
        out
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        write!(f, "{pad}{} {}", self.op.name(), self.op_detail())?;
        writeln!(
            f,
            "  (rows≈{:.0}, time≈{:.1}ms, total≈{:.1}ms, mem={}KB)",
            self.annot.est_rows,
            self.annot.est_time_ms,
            self.annot.est_total_time_ms,
            self.annot.mem_grant_bytes / 1024
        )?;
        for c in &self.children {
            c.fmt_indented(f, indent + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for PhysPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field};

    fn leaf(table: &str) -> PhysPlan {
        PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: table.into(),
                    file: FileId(0),
                    pages: 10,
                    rows: 100,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(table, "a", DataType::Int)]).unwrap(),
        )
    }

    fn join(l: PhysPlan, r: PhysPlan) -> PhysPlan {
        let schema = l.schema.join(&r.schema);
        PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![l, r],
            schema,
        )
    }

    #[test]
    fn ids_are_preorder_unique() {
        let mut p = join(join(leaf("a"), leaf("b")), leaf("c"));
        let n = p.assign_ids();
        assert_eq!(n, 5);
        assert_eq!(p.id, NodeId(0));
        let mut seen = Vec::new();
        p.walk(&mut |n| seen.push(n.id.0));
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
        assert!(p.find(NodeId(3)).is_some());
        assert!(p.find(NodeId(9)).is_none());
    }

    #[test]
    fn roll_up_times_accumulates() {
        let cfg = EngineConfig::default();
        let mut p = join(leaf("a"), leaf("b"));
        p.walk_mut(&mut |n| {
            n.annot.est_cost = CostEst {
                io_pages: 10.0,
                cpu_ops: 0.0,
            }
        });
        p.roll_up_times(&cfg);
        let self_ms = 10.0 * cfg.io_read_ms;
        assert!((p.annot.est_time_ms - self_ms).abs() < 1e-9);
        assert!((p.annot.est_total_time_ms - 3.0 * self_ms).abs() < 1e-9);
    }

    #[test]
    fn blocking_and_memory_flags() {
        assert!(PhysOp::Sort { keys: vec![] }.is_blocking());
        assert!(!PhysOp::Filter {
            predicate: mq_expr::lit(true)
        }
        .is_blocking());
        assert!(PhysOp::HashJoin {
            build_keys: vec![],
            probe_keys: vec![]
        }
        .is_memory_consumer());
    }

    #[test]
    fn collectors_enumeration() {
        let base = leaf("a");
        let schema = base.schema.clone();
        let mut p = PhysPlan::new(
            PhysOp::StatsCollector {
                specs: vec![CollectorSpec {
                    column: "a.a".into(),
                    histogram: true,
                    distinct: false,
                }],
                site: "after-scan".into(),
            },
            vec![base],
            schema,
        );
        p.assign_ids();
        assert_eq!(p.collectors().len(), 1);
        assert_eq!(p.join_count(), 0);
    }

    #[test]
    fn display_contains_annotations() {
        let mut p = join(leaf("x"), leaf("y"));
        p.assign_ids();
        let text = p.to_string();
        assert!(text.contains("HashJoin"));
        assert!(text.contains("SeqScan x"));
        assert!(text.contains("rows≈"));
    }

    #[test]
    fn cost_arithmetic() {
        let cfg = EngineConfig::default();
        let a = CostEst {
            io_pages: 5.0,
            cpu_ops: 1000.0,
        };
        let b = CostEst {
            io_pages: 3.0,
            cpu_ops: 500.0,
        };
        let c = a.plus(&b);
        assert_eq!(c.io_pages, 8.0);
        assert_eq!(c.cpu_ops, 1500.0);
        let expected = 8.0 * cfg.io_read_ms + 1500.0 * cfg.cpu_op_ms;
        assert!((c.time_ms(&cfg) - expected).abs() < 1e-12);
        assert_eq!(CostEst::default().time_ms(&cfg), 0.0);
    }

    #[test]
    fn annotation_size_helpers() {
        let cfg = EngineConfig::default();
        let a = Annotation {
            est_rows: 1000.0,
            est_row_bytes: 100.0,
            ..Annotation::default()
        };
        assert_eq!(a.est_bytes(), 100_000.0);
        let pages = 100_000.0 / cfg.page_size as f64;
        assert!((a.est_pages(&cfg) - pages).abs() < 1e-12);
        // Tiny outputs still cost at least one page.
        let tiny = Annotation {
            est_rows: 1.0,
            est_row_bytes: 8.0,
            ..Annotation::default()
        };
        assert_eq!(tiny.est_pages(&cfg), 1.0);
    }

    #[test]
    fn find_mut_mutates_in_place() {
        let mut p = join(leaf("a"), leaf("b"));
        p.assign_ids();
        let target = p.children[1].id;
        p.find_mut(target).unwrap().annot.est_rows = 42.0;
        assert_eq!(p.find(target).unwrap().annot.est_rows, 42.0);
        assert!(p.find_mut(NodeId(99)).is_none());
    }

    #[test]
    fn node_count_matches_assign_ids() {
        let mut deep = leaf("a");
        for t in ["b", "c", "d", "e"] {
            deep = join(deep, leaf(t));
        }
        assert_eq!(deep.node_count(), 9);
        assert_eq!(deep.assign_ids(), 9);
        assert_eq!(deep.join_count(), 4);
    }

    #[test]
    fn walk_mut_is_preorder() {
        let mut p = join(join(leaf("a"), leaf("b")), leaf("c"));
        p.assign_ids();
        let mut order = Vec::new();
        p.walk_mut(&mut |n| order.push(n.id.0));
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn op_names_are_distinct() {
        use std::collections::HashSet;
        let ops = [
            leaf("t").op.name(),
            PhysOp::Filter {
                predicate: mq_expr::lit(true),
            }
            .name(),
            PhysOp::HashJoin {
                build_keys: vec![],
                probe_keys: vec![],
            }
            .name(),
            PhysOp::Sort { keys: vec![] }.name(),
            PhysOp::HashAggregate {
                group: vec![],
                aggs: vec![],
            }
            .name(),
            PhysOp::Limit { n: 1 }.name(),
            PhysOp::StatsCollector {
                specs: vec![],
                site: String::new(),
            }
            .name(),
        ];
        let set: HashSet<&str> = ops.iter().copied().collect();
        assert_eq!(set.len(), ops.len());
    }

    #[test]
    fn index_scan_display_shows_bounds() {
        let mut p = PhysPlan::new(
            PhysOp::IndexScan {
                spec: ScanSpec {
                    table: "t".into(),
                    file: FileId(0),
                    pages: 10,
                    rows: 100,
                },
                index: IndexId(0),
                column: "k".into(),
                lo: Some(Value::Int(5)),
                hi: Some(Value::Int(9)),
                residual: None,
                index_height: 2,
                clustering: 1.0,
            },
            vec![],
            Schema::new(vec![Field::qualified("t", "k", DataType::Int)]).unwrap(),
        );
        p.assign_ids();
        let text = p.to_string();
        assert!(text.contains("IndexScan t on k"), "{text}");
        assert!(text.contains("≥5") && text.contains("≤9"), "{text}");
    }

    #[test]
    fn collector_display_shows_site_and_columns() {
        let base = leaf("a");
        let schema = base.schema.clone();
        let mut p = PhysPlan::new(
            PhysOp::StatsCollector {
                specs: vec![CollectorSpec {
                    column: "a.a".into(),
                    histogram: true,
                    distinct: true,
                }],
                site: "build-of-join-2".into(),
            },
            vec![base],
            schema,
        );
        p.assign_ids();
        let text = p.to_string();
        assert!(text.contains("@build-of-join-2"), "{text}");
        assert!(text.contains("a.a"), "{text}");
    }
}
