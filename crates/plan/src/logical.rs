//! Logical query plans.
//!
//! A deliberately small algebra — scan, filter, project, equi-join,
//! aggregate, sort — sufficient for the paper's TPC-D workload. Joins
//! carry explicit equi-join column pairs; the optimizer is free to
//! reorder the join graph, so `Join` nodes at this level express the
//! *query*, not an execution order.

use std::fmt;

use mq_catalog::Catalog;
use mq_common::{Field, MqError, Result, Schema};
use mq_expr::Expr;

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        })
    }
}

/// One aggregate in an `Aggregate` node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Argument (`None` only for `COUNT(*)`).
    pub arg: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}({a}) AS {}", self.func, self.name),
            None => write!(f, "{}(*) AS {}", self.func, self.name),
        }
    }
}

/// A logical plan node.
///
/// ```
/// use mq_plan::LogicalPlan;
/// use mq_expr::{col, eq, lit};
///
/// let q = LogicalPlan::scan_filtered("orders", eq(col("orders.status"), lit("open")))
///     .join(LogicalPlan::scan("customer"), vec![("orders.cust", "customer.id")])
///     .limit(10);
/// assert_eq!(q.join_count(), 1);
/// assert_eq!(q.tables(), vec!["orders", "customer"]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Scan a base table, with an optional pushed-down filter.
    Scan {
        /// Catalog table name.
        table: String,
        /// Pushed-down predicate over the table's columns.
        filter: Option<Expr>,
    },
    /// Filter rows.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Predicate.
        predicate: Expr,
    },
    /// Project / rename columns.
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// Output expressions with names.
        exprs: Vec<(Expr, String)>,
    },
    /// Inner equi-join.
    Join {
        /// Left input.
        left: Box<LogicalPlan>,
        /// Right input.
        right: Box<LogicalPlan>,
        /// Equi-join pairs (left column name, right column name).
        on: Vec<(String, String)>,
    },
    /// Group-by aggregation (empty `group_by` = scalar aggregate).
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// Grouping column names.
        group_by: Vec<String>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Sort by columns (name, ascending?).
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// Sort keys.
        keys: Vec<(String, bool)>,
    },
    /// First `n` rows.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Row limit.
        n: u64,
    },
}

impl LogicalPlan {
    /// Derive the output schema (resolving table names via the catalog).
    pub fn schema(&self, catalog: &Catalog) -> Result<Schema> {
        match self {
            LogicalPlan::Scan { table, .. } => Ok(catalog.table(table)?.schema),
            LogicalPlan::Filter { input, .. } => input.schema(catalog),
            LogicalPlan::Project { input, exprs } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::with_capacity(exprs.len());
                for (e, name) in exprs {
                    let dtype = infer_type(e, &in_schema)?;
                    fields.push(Field::new(name.as_str(), dtype));
                }
                Schema::new(fields)
            }
            LogicalPlan::Join { left, right, .. } => {
                Ok(left.schema(catalog)?.join(&right.schema(catalog)?))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema(catalog)?;
                let mut fields = Vec::new();
                for g in group_by {
                    let idx = in_schema.index_of(g)?;
                    fields.push(in_schema.field(idx).clone());
                }
                for a in aggs {
                    let dtype = match (a.func, &a.arg) {
                        (AggFunc::Count, _) => mq_common::DataType::Int,
                        (AggFunc::Avg, _) => mq_common::DataType::Float,
                        (_, Some(e)) => infer_type(e, &in_schema)?,
                        (f, None) => {
                            return Err(MqError::Plan(format!("{f} requires an argument")))
                        }
                    };
                    fields.push(Field::new(a.name.as_str(), dtype));
                }
                Schema::new(fields)
            }
            LogicalPlan::Sort { input, .. } | LogicalPlan::Limit { input, .. } => {
                input.schema(catalog)
            }
        }
    }

    /// All base tables referenced (in plan order).
    pub fn tables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |p| {
            if let LogicalPlan::Scan { table, .. } = p {
                out.push(table.as_str());
            }
        });
        out
    }

    /// Number of joins in the plan — the paper's query-complexity
    /// classifier (§3.2: simple ≤1, medium 2–3, complex ≥4).
    pub fn join_count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |p| {
            if matches!(p, LogicalPlan::Join { .. }) {
                n += 1;
            }
        });
        n
    }

    fn walk<'a>(&'a self, f: &mut impl FnMut(&'a LogicalPlan)) {
        f(self);
        match self {
            LogicalPlan::Scan { .. } => {}
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => input.walk(f),
            LogicalPlan::Join { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
        }
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            LogicalPlan::Scan { table, filter } => {
                write!(f, "{pad}Scan {table}")?;
                if let Some(p) = filter {
                    write!(f, " [{p}]")?;
                }
                writeln!(f)
            }
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter [{predicate}]")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Project { input, exprs } => {
                write!(f, "{pad}Project [")?;
                for (i, (e, n)) in exprs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e} AS {n}")?;
                }
                writeln!(f, "]")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Join { left, right, on } => {
                write!(f, "{pad}Join [")?;
                for (i, (l, r)) in on.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "{l} = {r}")?;
                }
                writeln!(f, "]")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                write!(f, "{pad}Aggregate group=[{}] aggs=[", group_by.join(", "))?;
                for (i, a) in aggs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, "]")?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(k, asc)| format!("{k} {}", if *asc { "ASC" } else { "DESC" }))
                    .collect();
                writeln!(f, "{pad}Sort [{}]", ks.join(", "))?;
                input.fmt_indented(f, indent + 1)
            }
            LogicalPlan::Limit { input, n } => {
                writeln!(f, "{pad}Limit {n}")?;
                input.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

/// Infer the output type of an expression over a schema. Comparison
/// and UDF predicates are Bool; arithmetic promotes to Float unless
/// both sides are Int.
fn infer_type(e: &Expr, schema: &Schema) -> Result<mq_common::DataType> {
    use mq_common::DataType;
    Ok(match e {
        Expr::Column(name) => schema.field(schema.index_of(name)?).dtype,
        Expr::BoundColumn { index, .. } => schema.field(*index).dtype,
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Int),
        Expr::Cmp { .. } | Expr::And(_) | Expr::Or(_) | Expr::Not(_) | Expr::UdfPred { .. } => {
            DataType::Bool
        }
        Expr::Arith { left, right, .. } => {
            let l = infer_type(left, schema)?;
            let r = infer_type(right, schema)?;
            if l == DataType::Int && r == DataType::Int {
                DataType::Int
            } else {
                DataType::Float
            }
        }
    })
}

/// Fluent builder helpers.
impl LogicalPlan {
    /// Scan a table.
    pub fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.to_string(),
            filter: None,
        }
    }

    /// Scan with a pushed-down filter.
    pub fn scan_filtered(table: &str, filter: Expr) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.to_string(),
            filter: Some(filter),
        }
    }

    /// Add a filter on top.
    pub fn filter(self, predicate: Expr) -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(self),
            predicate,
        }
    }

    /// Equi-join with another plan.
    pub fn join(self, right: LogicalPlan, on: Vec<(&str, &str)>) -> LogicalPlan {
        LogicalPlan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on: on
                .into_iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
        }
    }

    /// Group-by aggregation.
    pub fn aggregate(self, group_by: Vec<&str>, aggs: Vec<AggExpr>) -> LogicalPlan {
        LogicalPlan::Aggregate {
            input: Box::new(self),
            group_by: group_by.into_iter().map(String::from).collect(),
            aggs,
        }
    }

    /// Projection.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> LogicalPlan {
        LogicalPlan::Project {
            input: Box::new(self),
            exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
        }
    }

    /// Sort.
    pub fn sort(self, keys: Vec<(&str, bool)>) -> LogicalPlan {
        LogicalPlan::Sort {
            input: Box::new(self),
            keys: keys
                .into_iter()
                .map(|(k, asc)| (k.to_string(), asc))
                .collect(),
        }
    }

    /// Limit.
    pub fn limit(self, n: u64) -> LogicalPlan {
        LogicalPlan::Limit {
            input: Box::new(self),
            n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, EngineConfig, SimClock};
    use mq_expr::{col, eq, lit};
    use mq_storage::Storage;

    fn catalog() -> Catalog {
        let cfg = EngineConfig::default();
        let st = Storage::new(&cfg, SimClock::new());
        let cat = Catalog::new();
        cat.create_table(&st, "r", vec![("a", DataType::Int), ("b", DataType::Float)])
            .unwrap();
        cat.create_table(&st, "s", vec![("a", DataType::Int), ("c", DataType::Str)])
            .unwrap();
        cat
    }

    #[test]
    fn join_schema_concatenates() {
        let cat = catalog();
        let p = LogicalPlan::scan("r").join(LogicalPlan::scan("s"), vec![("r.a", "s.a")]);
        let sch = p.schema(&cat).unwrap();
        assert_eq!(sch.len(), 4);
        assert_eq!(sch.index_of("r.a").unwrap(), 0);
        assert_eq!(sch.index_of("s.c").unwrap(), 3);
        assert_eq!(p.join_count(), 1);
        assert_eq!(p.tables(), vec!["r", "s"]);
    }

    #[test]
    fn aggregate_schema() {
        let cat = catalog();
        let p = LogicalPlan::scan("r").aggregate(
            vec!["r.a"],
            vec![
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(col("r.b")),
                    name: "avg_b".into(),
                },
                AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                    name: "n".into(),
                },
            ],
        );
        let sch = p.schema(&cat).unwrap();
        assert_eq!(sch.len(), 3);
        assert_eq!(sch.field(1).dtype, DataType::Float);
        assert_eq!(sch.field(2).dtype, DataType::Int);
    }

    #[test]
    fn project_infers_types() {
        let cat = catalog();
        let p = LogicalPlan::scan("r").project(vec![
            (eq(col("r.a"), lit(1i64)), "flag"),
            (col("r.b"), "b2"),
        ]);
        let sch = p.schema(&cat).unwrap();
        assert_eq!(sch.field(0).dtype, DataType::Bool);
        assert_eq!(sch.field(1).dtype, DataType::Float);
    }

    #[test]
    fn unknown_table_errors() {
        let cat = catalog();
        assert!(LogicalPlan::scan("nope").schema(&cat).is_err());
    }

    #[test]
    fn display_is_tree_shaped() {
        let p = LogicalPlan::scan_filtered("r", eq(col("r.a"), lit(1i64)))
            .join(LogicalPlan::scan("s"), vec![("r.a", "s.a")])
            .aggregate(vec!["s.c"], vec![]);
        let text = p.to_string();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Join"));
        assert!(text.contains("Scan r [r.a = 1]"));
    }
}
