//! Property tests for the memory manager's allocation invariants.
//!
//! Whatever the plan shape, estimates, budget, or set of started/
//! finished operators, an allocation must (a) never over-commit the
//! budget, (b) keep every grant within its operator's [min, max] band,
//! (c) pin started operators' grants, and (d) never lower a floored
//! grant. These are the §2.3 contract; every re-allocation decision the
//! controller makes relies on them.

use std::collections::{HashMap, HashSet};

use proptest::prelude::*;

use mq_common::{DataType, EngineConfig, Field, FileId, Schema};
use mq_memory::{demands, MemoryManager};
use mq_plan::{PhysOp, PhysPlan, ScanSpec};

fn scan(name: &str, rows: f64, row_bytes: f64) -> PhysPlan {
    let mut p = PhysPlan::new(
        PhysOp::SeqScan {
            spec: ScanSpec {
                table: name.into(),
                file: FileId(0),
                pages: 1,
                rows: rows as u64,
            },
            filter: None,
        },
        vec![],
        Schema::new(vec![Field::qualified(name, "a", DataType::Int)]).unwrap(),
    );
    p.annot.est_rows = rows;
    p.annot.est_row_bytes = row_bytes;
    p
}

fn hash_join(build: PhysPlan, probe: PhysPlan, out_rows: f64, out_bytes: f64) -> PhysPlan {
    let schema = build.schema.join(&probe.schema);
    let mut p = PhysPlan::new(
        PhysOp::HashJoin {
            build_keys: vec![0],
            probe_keys: vec![0],
        },
        vec![build, probe],
        schema,
    );
    p.annot.est_rows = out_rows;
    p.annot.est_row_bytes = out_bytes;
    p
}

/// A random left-deep join chain: the canonical Paradise plan shape.
fn arb_plan() -> impl Strategy<Value = PhysPlan> {
    let leaf = (10.0..20_000.0f64, 8.0..400.0f64);
    proptest::collection::vec(leaf, 2..6).prop_map(|leaves| {
        let mut iter = leaves.into_iter().enumerate();
        let (_, (r, w)) = iter.next().unwrap();
        let mut plan = scan("t0", r, w);
        for (i, (rows, width)) in iter {
            let probe = scan(&format!("t{i}"), rows, width);
            // Join output sized somewhere between the inputs.
            let out_rows = (plan.annot.est_rows + rows) / 2.0;
            plan = hash_join(plan, probe, out_rows, (width + 24.0).min(200.0));
        }
        plan.assign_ids();
        plan
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grants stay within bands and the budget is never over-committed.
    #[test]
    fn allocation_respects_bands_and_budget(
        mut plan in arb_plan(),
        budget_kb in 64usize..16_384,
    ) {
        let cfg = EngineConfig::default();
        let mm = MemoryManager::with_budget(budget_kb * 1024);
        match mm.allocate(&mut plan, &cfg) {
            Ok(report) => {
                let mut total = 0usize;
                for g in &report.grants {
                    prop_assert!(g.min <= g.max);
                    prop_assert!(g.granted >= g.min, "grant below min: {g:?}");
                    prop_assert!(g.granted <= g.max, "grant above max: {g:?}");
                    total += g.granted;
                    // Grants are mirrored into the annotations.
                    prop_assert_eq!(
                        plan.find(g.node).unwrap().annot.mem_grant_bytes,
                        g.granted
                    );
                }
                prop_assert!(total + report.unused <= mm.budget());
            }
            Err(e) => {
                // OOM is the only legal failure, and only when minimums
                // genuinely exceed the budget.
                prop_assert_eq!(e.kind(), "oom");
                let min_sum: usize = demands(&plan, &cfg).iter().map(|d| d.min).sum();
                prop_assert!(min_sum > mm.budget());
            }
        }
    }

    /// Re-allocation pins every started operator's grant bit-for-bit
    /// and never hands out more than the budget in total.
    #[test]
    fn realloc_pins_started_grants(
        mut plan in arb_plan(),
        budget_kb in 256usize..16_384,
        shrink in 0.1..1.0f64,
    ) {
        let cfg = EngineConfig::default();
        let mm = MemoryManager::with_budget(budget_kb * 1024);
        let Ok(first) = mm.allocate(&mut plan, &cfg) else { return Ok(()) };
        if first.grants.is_empty() { return Ok(()); }

        // The deepest consumer starts; estimates elsewhere shrink.
        let started_node = first.grants[0].node;
        let mut started = HashSet::new();
        started.insert(started_node);
        plan.walk_mut(&mut |n| {
            if n.id != started_node {
                n.annot.est_rows = (n.annot.est_rows * shrink).max(1.0);
            }
        });

        let Ok(second) = mm.reallocate(&mut plan, &cfg, &started, &HashSet::new()) else {
            return Ok(());
        };
        let pinned = second.grant_for(started_node).unwrap();
        prop_assert_eq!(pinned.granted, first.grants[0].granted);
        let total: usize = second.grants.iter().map(|g| g.granted).sum();
        prop_assert!(total <= mm.budget());
    }

    /// With floors set to the previous grants, no grant ever decreases —
    /// the controller's monotone-grants policy.
    #[test]
    fn floors_make_grants_monotone(
        mut plan in arb_plan(),
        budget_kb in 256usize..16_384,
        shrink in 0.05..1.0f64,
    ) {
        let cfg = EngineConfig::default();
        let mm = MemoryManager::with_budget(budget_kb * 1024);
        let Ok(first) = mm.allocate(&mut plan, &cfg) else { return Ok(()) };

        let floors: HashMap<_, _> = first
            .grants
            .iter()
            .map(|g| (g.node, g.granted))
            .collect();
        plan.walk_mut(&mut |n| {
            n.annot.est_rows = (n.annot.est_rows * shrink).max(1.0);
        });
        let Ok(second) = mm.reallocate_with_floors(
            &mut plan,
            &cfg,
            &HashSet::new(),
            &HashSet::new(),
            &floors,
        ) else {
            return Ok(());
        };
        for g in &second.grants {
            prop_assert!(
                g.granted >= floors[&g.node],
                "grant shrank under a floor: {g:?} floor {}",
                floors[&g.node]
            );
        }
    }

    /// Marking an operator finished frees its memory. An individual
    /// grant may legitimately move in either direction — with more
    /// budget the greedy pass can suddenly afford some operator's full
    /// maximum, diverting leftover that another operator used to
    /// receive as a partial — but the *total* granted to the survivors
    /// never decreases, and every grant stays within its band. (The
    /// controller's floors, tested above, are what protect an
    /// individual operator from regression in a live query.)
    #[test]
    fn finishing_frees_memory(
        mut plan in arb_plan(),
        budget_kb in 256usize..8_192,
    ) {
        let cfg = EngineConfig::default();
        let mm = MemoryManager::with_budget(budget_kb * 1024);
        let Ok(first) = mm.allocate(&mut plan, &cfg) else { return Ok(()) };
        if first.grants.len() < 2 { return Ok(()); }

        let mut finished = HashSet::new();
        finished.insert(first.grants[0].node);
        let Ok(second) = mm.reallocate(&mut plan, &cfg, &HashSet::new(), &finished) else {
            return Ok(());
        };
        prop_assert!(second.grant_for(first.grants[0].node).is_none());

        let before_total: usize = first.grants[1..].iter().map(|g| g.granted).sum();
        let after_total: usize = second.grants.iter().map(|g| g.granted).sum();
        prop_assert!(
            after_total >= before_total,
            "total shrank after freeing: {before_total} -> {after_total}"
        );
        for g in &second.grants {
            prop_assert!(g.granted >= g.min && g.granted <= g.max);
        }
    }
}
