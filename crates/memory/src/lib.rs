//! # mq-memory — the memory manager
//!
//! Reproduces the Paradise memory-management behaviour the paper builds
//! on (§2.3, worked example of Figure 3): each memory-consuming
//! operator (hash join, sort, hash aggregate) derives *minimum* and
//! *maximum* memory demands from the optimizer's size estimates; the
//! manager divides a fixed per-query budget among them. Operators
//! granted less than their maximum spill — a hash join runs in multiple
//! passes, a sort does multi-pass merging — which is precisely the
//! sub-optimality Dynamic Re-Optimization repairs when improved
//! estimates show the demand was overstated.
//!
//! Re-allocation honours the paper's constraint: "once an operator
//! starts executing, its memory allocation cannot be changed. […]
//! improved statistics can only be used to improve the memory
//! allocation for operators that have not begun executing."

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use mq_common::{EngineConfig, MqError, Result};
use mq_plan::{NodeId, PhysOp, PhysPlan};

pub mod broker;

pub use broker::{Lease, MemoryBroker};

/// The derived demand of one memory-consuming operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryDemand {
    /// The operator.
    pub node: NodeId,
    /// Bytes below which the operator cannot run (partitioning floor).
    pub min: usize,
    /// Bytes at which the operator runs in one pass.
    pub max: usize,
}

/// One grant in an [`AllocationReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The operator.
    pub node: NodeId,
    /// Its minimum demand.
    pub min: usize,
    /// Its maximum demand.
    pub max: usize,
    /// Bytes granted.
    pub granted: usize,
}

/// Result of an allocation pass.
#[derive(Debug, Clone, Default)]
pub struct AllocationReport {
    /// Per-operator grants, in execution (post-order) order.
    pub grants: Vec<Grant>,
    /// Budget that remained unassigned.
    pub unused: usize,
}

impl AllocationReport {
    /// The grant for one node, if it is a memory consumer.
    pub fn grant_for(&self, node: NodeId) -> Option<&Grant> {
        self.grants.iter().find(|g| g.node == node)
    }

    /// Count of operators squeezed below their maximum.
    pub fn squeezed(&self) -> usize {
        self.grants.iter().filter(|g| g.granted < g.max).count()
    }
}

/// Hash-table space overhead relative to raw build-side bytes
/// (the paper's "size of left input plus overhead").
pub const HASH_OVERHEAD: f64 = 1.4;

/// Per-group bookkeeping overhead for hash aggregation, bytes.
pub const GROUP_OVERHEAD: f64 = 32.0;

/// Compute min/max demands for every memory consumer in the plan,
/// based on its *current* annotations (so re-running after the
/// re-optimizer improves estimates yields new demands — Figure 3).
pub fn demands(plan: &PhysPlan, cfg: &EngineConfig) -> Vec<MemoryDemand> {
    let mut out = Vec::new();
    collect_postorder(plan, cfg, &mut out);
    out
}

fn collect_postorder(plan: &PhysPlan, cfg: &EngineConfig, out: &mut Vec<MemoryDemand>) {
    for c in &plan.children {
        collect_postorder(c, cfg, out);
    }
    let page = cfg.page_size as f64;
    let demand = match &plan.op {
        PhysOp::HashJoin { .. } => {
            let build = &plan.children[0].annot;
            // +16 bytes/row: the executor's per-entry bookkeeping
            // (keys, Vec headers) — the demand model must match the
            // spill accounting or grants systematically undershoot.
            let max = ((build.est_bytes() + build.est_rows * 16.0) * HASH_OVERHEAD).max(page);
            // Grace-partitioning floor: √(build pages) partitions, one
            // page each, plus an input page.
            let build_pages = (build.est_bytes() / page).max(1.0);
            let min = (build_pages.sqrt().ceil() + 1.0) * page;
            Some((min, max))
        }
        PhysOp::Sort { .. } => {
            let input = &plan.children[0].annot;
            let max = (input.est_bytes() + input.est_rows * 8.0).max(page);
            let min = 3.0 * page;
            Some((min, max))
        }
        PhysOp::HashAggregate { .. } => {
            // Output rows = groups; each needs its row plus bookkeeping.
            let groups = plan.annot.est_rows.max(1.0);
            let max = groups * (plan.annot.est_row_bytes + GROUP_OVERHEAD);
            let min = 2.0 * page;
            Some((min, max))
        }
        _ => None,
    };
    if let Some((min, max)) = demand {
        let min = min.round() as usize;
        let max = (max.round() as usize).max(min);
        out.push(MemoryDemand {
            node: plan.id,
            min,
            max,
        });
    }
}

/// The memory manager.
///
/// Standalone, its budget is a fixed number of bytes. Under the
/// concurrent runtime it instead holds a [`Lease`] from the global
/// [`MemoryBroker`]: the budget is whatever the lease currently
/// grants, and every mid-query re-allocation that needs more first
/// asks the lease to grow — so cross-query memory movement is always
/// brokered, never assumed.
#[derive(Debug, Clone)]
pub struct MemoryManager {
    budget: usize,
    lease: Option<Arc<Lease>>,
}

impl MemoryManager {
    /// Manager with the configured per-query budget.
    pub fn new(cfg: &EngineConfig) -> MemoryManager {
        MemoryManager {
            budget: cfg.query_memory_bytes,
            lease: None,
        }
    }

    /// Manager with an explicit budget (tests, experiments).
    pub fn with_budget(budget: usize) -> MemoryManager {
        MemoryManager {
            budget,
            lease: None,
        }
    }

    /// Manager whose budget is a lease from the global broker.
    pub fn with_lease(lease: Arc<Lease>) -> MemoryManager {
        MemoryManager {
            budget: 0,
            lease: Some(lease),
        }
    }

    /// The budget in bytes (the lease's current grant when brokered).
    pub fn budget(&self) -> usize {
        match &self.lease {
            Some(l) => l.granted(),
            None => self.budget,
        }
    }

    /// The lease backing this manager, if brokered.
    pub fn lease(&self) -> Option<&Arc<Lease>> {
        self.lease.as_ref()
    }

    /// Allocate memory to every memory consumer of `plan`, writing
    /// grants into each node's annotation. Greedy in execution order:
    /// every operator gets its minimum; then operators are raised to
    /// their maximum (or as far as the remaining budget allows) in the
    /// order they begin executing — mirroring Figure 3, where the first
    /// hash join receives its maximum and the second is squeezed to its
    /// minimum.
    pub fn allocate(&self, plan: &mut PhysPlan, cfg: &EngineConfig) -> Result<AllocationReport> {
        self.reallocate(plan, cfg, &HashSet::new(), &HashSet::new())
    }

    /// Like [`MemoryManager::reallocate`], but with per-operator grant
    /// *floors*: an unstarted operator is never sized below its floor
    /// (its current grant). Lowering a grant trusts an estimate that
    /// may still be wrong, and an induced spill costs far more than the
    /// memory recycled — so the controller only ever raises.
    pub fn reallocate_with_floors(
        &self,
        plan: &mut PhysPlan,
        cfg: &EngineConfig,
        started: &HashSet<NodeId>,
        finished: &HashSet<NodeId>,
        floors: &HashMap<NodeId, usize>,
    ) -> Result<AllocationReport> {
        let saved: Vec<MemoryDemand> = demands(plan, cfg);
        let _ = saved;
        self.reallocate_inner(plan, cfg, started, finished, floors)
    }

    /// Re-allocate after estimates improved. Operators in `started`
    /// keep their existing grants (charged against the budget); only
    /// not-yet-started operators are re-sized (§2.3). Operators in
    /// `finished` have released their memory and are skipped entirely.
    pub fn reallocate(
        &self,
        plan: &mut PhysPlan,
        cfg: &EngineConfig,
        started: &HashSet<NodeId>,
        finished: &HashSet<NodeId>,
    ) -> Result<AllocationReport> {
        self.reallocate_inner(plan, cfg, started, finished, &HashMap::new())
    }

    fn reallocate_inner(
        &self,
        plan: &mut PhysPlan,
        cfg: &EngineConfig,
        started: &HashSet<NodeId>,
        finished: &HashSet<NodeId>,
        floors: &HashMap<NodeId, usize>,
    ) -> Result<AllocationReport> {
        let all: Vec<MemoryDemand> = demands(plan, cfg)
            .into_iter()
            .filter(|d| !finished.contains(&d.node))
            .map(|mut d| {
                if let Some(&floor) = floors.get(&d.node) {
                    d.min = d.min.max(floor);
                    d.max = d.max.max(d.min);
                }
                d
            })
            .collect();
        let mut kept: HashMap<NodeId, usize> = HashMap::new();
        let mut budget = self.budget();
        for d in &all {
            if started.contains(&d.node) {
                let grant = plan
                    .find(d.node)
                    .map(|n| n.annot.mem_grant_bytes)
                    .unwrap_or(0);
                budget = budget.saturating_sub(grant);
                kept.insert(d.node, grant);
            }
        }
        let open: Vec<&MemoryDemand> = all.iter().filter(|d| !kept.contains_key(&d.node)).collect();

        // Pass 1: minimums for everyone still open. A brokered manager
        // first tries to grow its lease to cover the shortfall — and,
        // opportunistically, everyone's maximum — so a query squeezed
        // at admission recovers memory as concurrent queries release it.
        let min_sum: usize = open.iter().map(|d| d.min).sum();
        if let Some(lease) = &self.lease {
            let ideal: usize = open.iter().map(|d| d.max).sum();
            if ideal > budget {
                budget += lease.grow(ideal - budget);
            }
        }
        if min_sum > budget {
            return Err(MqError::OutOfMemory(format!(
                "minimum demands {min_sum} exceed remaining budget {budget}"
            )));
        }
        let mut grants: HashMap<NodeId, usize> = open.iter().map(|d| (d.node, d.min)).collect();
        let mut remaining = budget - min_sum;

        // Pass 2: raise to max greedily in execution order.
        for d in &open {
            let need = d.max - d.min;
            if need <= remaining {
                grants.insert(d.node, d.max);
                remaining -= need;
            }
        }
        // Pass 3: spread what is left partially (still execution
        // order). Paradise gave the leftover to the final aggregate
        // (§2.3's example); spreading toward the earliest still-squeezed
        // operator dominates that policy in our experiments, so we keep
        // the stronger allocator for both the baseline and the
        // re-optimized runs.
        for d in &open {
            if remaining == 0 {
                break;
            }
            let cur = grants[&d.node];
            if cur < d.max {
                let extra = remaining.min(d.max - cur);
                grants.insert(d.node, cur + extra);
                remaining -= extra;
            }
        }

        // Write grants into annotations and build the report.
        let mut report = AllocationReport {
            grants: Vec::with_capacity(all.len()),
            unused: remaining,
        };
        for d in &all {
            let granted = kept
                .get(&d.node)
                .copied()
                .or_else(|| grants.get(&d.node).copied())
                .unwrap_or(0);
            if let Some(node) = plan.find_mut(d.node) {
                node.annot.mem_grant_bytes = granted;
            }
            report.grants.push(Grant {
                node: d.node,
                min: d.min,
                max: d.max,
                granted,
            });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::{Annotation, CostEst, ScanSpec};

    fn scan(name: &str, rows: f64, row_bytes: f64) -> PhysPlan {
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: name.into(),
                    file: FileId(0),
                    pages: 1,
                    rows: rows as u64,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(name, "a", DataType::Int)]).unwrap(),
        );
        p.annot = Annotation {
            est_rows: rows,
            est_row_bytes: row_bytes,
            est_cost: CostEst::default(),
            est_time_ms: 0.0,
            est_total_time_ms: 0.0,
            mem_grant_bytes: 0,
        };
        p
    }

    fn hash_join(build: PhysPlan, probe: PhysPlan, out_rows: f64) -> PhysPlan {
        let schema = build.schema.join(&probe.schema);
        let mut p = PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![build, probe],
            schema,
        );
        p.annot.est_rows = out_rows;
        p.annot.est_row_bytes = 40.0;
        p
    }

    /// The Figure 3 scenario, scaled: budget fits one join's maximum but
    /// not both; the first join gets max, the second gets min.
    #[test]
    fn figure3_squeeze() {
        let cfg = EngineConfig::default();
        // Build sides: 15k rows × 200B ≈ 3 MB → max ≈ 4.2 MB each.
        let j1 = hash_join(
            scan("r1", 15_000.0, 200.0),
            scan("r2", 50_000.0, 100.0),
            15_000.0,
        );
        let mut j2 = hash_join(j1, scan("r3", 80_000.0, 100.0), 15_000.0);
        // Join 2's build is join 1's output: 15k × 40B... make it 3MB too.
        j2.children[0].annot.est_row_bytes = 200.0;
        j2.assign_ids();
        let mm = MemoryManager::with_budget(8 * 1024 * 1024);
        let report = mm.allocate(&mut j2, &cfg).unwrap();
        assert_eq!(report.grants.len(), 2);
        let g1 = report.grants[0];
        let g2 = report.grants[1];
        assert_eq!(g1.granted, g1.max, "first join gets its maximum");
        assert!(
            g2.granted < g2.max,
            "second join squeezed: {} vs max {}",
            g2.granted,
            g2.max
        );
        // Grants are written into the annotations.
        assert_eq!(j2.find(g1.node).unwrap().annot.mem_grant_bytes, g1.granted);
    }

    /// Figure 3's resolution: the observed build is half the estimate,
    /// so re-allocation (with join 1 already started) now satisfies
    /// join 2's maximum.
    #[test]
    fn figure3_realloc_after_improved_estimate() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(
            scan("r1", 15_000.0, 200.0),
            scan("r2", 50_000.0, 100.0),
            15_000.0,
        );
        let mut j2 = hash_join(j1, scan("r3", 80_000.0, 100.0), 15_000.0);
        j2.children[0].annot.est_row_bytes = 200.0;
        j2.assign_ids();
        let mm = MemoryManager::with_budget(8 * 1024 * 1024);
        let first = mm.allocate(&mut j2, &cfg).unwrap();
        let j1_id = first.grants[0].node;
        let j2_id = first.grants[1].node;
        assert!(first.grants[1].granted < first.grants[1].max);

        // Improved estimate: join 1 output is 7500 rows, not 15000.
        j2.children[0].annot.est_rows = 7_500.0;
        let mut started = HashSet::new();
        started.insert(j1_id);
        let second = mm
            .reallocate(&mut j2, &cfg, &started, &HashSet::new())
            .unwrap();
        let g1 = second.grant_for(j1_id).unwrap();
        let g2 = second.grant_for(j2_id).unwrap();
        assert_eq!(
            g1.granted, first.grants[0].granted,
            "started operator keeps its grant"
        );
        assert_eq!(
            g2.granted, g2.max,
            "second join now gets its (smaller) maximum"
        );
    }

    #[test]
    fn min_demands_exceeding_budget_is_oom() {
        let cfg = EngineConfig::default();
        let mut plan = hash_join(
            scan("big", 10_000_000.0, 500.0),
            scan("p", 100.0, 10.0),
            100.0,
        );
        plan.assign_ids();
        let mm = MemoryManager::with_budget(8 * cfg.page_size);
        let err = mm.allocate(&mut plan, &cfg).unwrap_err();
        assert_eq!(err.kind(), "oom");
    }

    #[test]
    fn leftover_spreads_partially() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 5_000.0, 200.0), scan("b", 100.0, 10.0), 5_000.0);
        let mut j2 = hash_join(j1, scan("c", 100.0, 10.0), 5_000.0);
        j2.children[0].annot.est_row_bytes = 200.0;
        j2.assign_ids();
        // Budget = one max (≈1.4MB) + half of the second's.
        let mm = MemoryManager::with_budget(2 * 1024 * 1024);
        let report = mm.allocate(&mut j2, &cfg).unwrap();
        let g2 = report.grants[1];
        assert!(g2.granted > g2.min, "partial raise above min");
        assert!(g2.granted < g2.max);
        assert_eq!(report.unused, 0);
    }

    #[test]
    fn sort_and_aggregate_demands() {
        let cfg = EngineConfig::default();
        let input = scan("t", 10_000.0, 100.0);
        let mut sort = PhysPlan::new(
            PhysOp::Sort {
                keys: vec![(0, true)],
            },
            vec![input],
            Schema::new(vec![Field::qualified("t", "a", DataType::Int)]).unwrap(),
        );
        sort.annot.est_rows = 10_000.0;
        sort.annot.est_row_bytes = 100.0;
        let mut agg = PhysPlan::new(
            PhysOp::HashAggregate {
                group: vec![0],
                aggs: vec![],
            },
            vec![sort],
            Schema::new(vec![Field::qualified("t", "a", DataType::Int)]).unwrap(),
        );
        agg.annot.est_rows = 500.0;
        agg.annot.est_row_bytes = 16.0;
        agg.assign_ids();
        let ds = demands(&agg, &cfg);
        assert_eq!(ds.len(), 2);
        // Sort max = input bytes plus 8 B/row run bookkeeping.
        assert_eq!(ds[0].max, 1_000_000 + 8 * 10_000);
        assert_eq!(ds[0].min, 3 * cfg.page_size);
        // Aggregate max = groups × (row + overhead).
        assert_eq!(ds[1].max, (500.0 * (16.0 + GROUP_OVERHEAD)) as usize);
        assert_ne!(ds[0].node, ds[1].node);
    }
}

#[cfg(test)]
mod floor_tests {
    use super::*;
    use crate::tests_support::*;

    #[test]
    fn floors_prevent_lowering() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 10_000.0, 100.0), scan("b", 100.0, 10.0), 10_000.0);
        let mut plan = hash_join(j1, scan("c", 100.0, 10.0), 10_000.0);
        plan.children[0].annot.est_row_bytes = 100.0;
        plan.assign_ids();
        let mm = MemoryManager::with_budget(4 << 20);
        let first = mm.allocate(&mut plan, &cfg).unwrap();
        let node = first.grants[1].node;
        let old = first.grants[1].granted;

        // Estimates collapse: without a floor the grant would shrink.
        plan.children[0].annot.est_rows = 100.0;
        let mut floors = HashMap::new();
        floors.insert(node, old);
        let second = mm
            .reallocate_with_floors(&mut plan, &cfg, &HashSet::new(), &HashSet::new(), &floors)
            .unwrap();
        assert!(second.grant_for(node).unwrap().granted >= old);

        // And without the floor it does shrink.
        let third = mm
            .reallocate(&mut plan, &cfg, &HashSet::new(), &HashSet::new())
            .unwrap();
        assert!(third.grant_for(node).unwrap().granted < old);
    }
}

#[cfg(test)]
mod realloc_tests {
    use super::*;
    use crate::tests_support::*;

    /// A finished operator's memory returns to the pool: after marking
    /// join 1 finished, join 2 can be raised to its maximum even though
    /// both maxima never fit together.
    #[test]
    fn finished_operator_releases_memory() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 10_000.0, 200.0), scan("b", 100.0, 10.0), 10_000.0);
        let mut plan = hash_join(j1, scan("c", 100.0, 10.0), 10_000.0);
        plan.children[0].annot.est_row_bytes = 200.0;
        plan.assign_ids();
        // Budget fits exactly one maximum (~2.8 MB each).
        let mm = MemoryManager::with_budget(3 << 20);
        let first = mm.allocate(&mut plan, &cfg).unwrap();
        let j1_id = first.grants[0].node;
        let j2_id = first.grants[1].node;
        assert!(
            first.grants[1].granted < first.grants[1].max,
            "squeezed at first"
        );

        let mut finished = HashSet::new();
        finished.insert(j1_id);
        let second = mm
            .reallocate(&mut plan, &cfg, &HashSet::new(), &finished)
            .unwrap();
        assert!(
            second.grant_for(j1_id).is_none(),
            "finished op dropped from report"
        );
        let g2 = second.grant_for(j2_id).unwrap();
        assert_eq!(
            g2.granted, g2.max,
            "released memory raises the survivor to max"
        );
    }

    /// A started operator's existing grant is charged against the budget
    /// before anything is handed to open operators.
    #[test]
    fn started_grant_charged_against_budget() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 8_000.0, 200.0), scan("b", 100.0, 10.0), 8_000.0);
        let mut plan = hash_join(j1, scan("c", 100.0, 10.0), 8_000.0);
        plan.children[0].annot.est_row_bytes = 200.0;
        plan.assign_ids();
        let mm = MemoryManager::with_budget(3 << 20);
        let first = mm.allocate(&mut plan, &cfg).unwrap();
        let j1_id = first.grants[0].node;
        let j2_id = first.grants[1].node;

        let mut started = HashSet::new();
        started.insert(j1_id);
        let second = mm
            .reallocate(&mut plan, &cfg, &started, &HashSet::new())
            .unwrap();
        let g1 = second.grant_for(j1_id).unwrap();
        let g2 = second.grant_for(j2_id).unwrap();
        assert_eq!(g1.granted, first.grants[0].granted, "started grant pinned");
        // Whatever join 2 received, the total never exceeds the budget.
        assert!(g1.granted + g2.granted <= mm.budget());
    }

    /// If a started operator plus the open minimums exceed the budget,
    /// re-allocation reports OOM rather than over-committing.
    #[test]
    fn started_grants_can_exhaust_budget() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 8_000.0, 200.0), scan("b", 100.0, 10.0), 8_000.0);
        let mut plan = hash_join(j1, scan("c", 100.0, 10.0), 8_000.0);
        plan.children[0].annot.est_row_bytes = 200.0;
        plan.assign_ids();
        let mm = MemoryManager::with_budget(3 << 20);
        let first = mm.allocate(&mut plan, &cfg).unwrap();
        let j1_id = first.grants[0].node;

        // Inflate join 2's build estimate so even its *minimum* no longer
        // fits beside join 1's pinned grant.
        plan.children[0].annot.est_rows = 50_000_000.0;
        let mut started = HashSet::new();
        started.insert(j1_id);
        let err = mm
            .reallocate(&mut plan, &cfg, &started, &HashSet::new())
            .unwrap_err();
        assert_eq!(err.kind(), "oom");
    }

    #[test]
    fn report_helpers() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 5_000.0, 200.0), scan("b", 100.0, 10.0), 5_000.0);
        let mut plan = hash_join(j1, scan("c", 100.0, 10.0), 5_000.0);
        plan.children[0].annot.est_row_bytes = 200.0;
        plan.assign_ids();
        let mm = MemoryManager::with_budget(2 << 20);
        let report = mm.allocate(&mut plan, &cfg).unwrap();
        assert_eq!(report.squeezed(), 1);
        assert!(report.grant_for(NodeId(999_999)).is_none());
        for g in &report.grants {
            assert!(g.min <= g.max);
            assert!(g.granted >= g.min && g.granted <= g.max);
        }
    }

    /// Plenty of budget: everyone gets max, leftover is reported unused.
    #[test]
    fn surplus_budget_reports_unused() {
        let cfg = EngineConfig::default();
        let mut plan = hash_join(scan("a", 1_000.0, 50.0), scan("b", 100.0, 10.0), 1_000.0);
        plan.assign_ids();
        let mm = MemoryManager::with_budget(64 << 20);
        let report = mm.allocate(&mut plan, &cfg).unwrap();
        assert_eq!(report.squeezed(), 0);
        assert!(report.unused > 0);
        let g = report.grants[0];
        assert_eq!(g.granted, g.max);
        assert_eq!(report.unused, mm.budget() - g.max);
    }

    /// Demand formulas: the grace-partitioning floor grows with the
    /// square root of the build size; the sort floor is constant.
    #[test]
    fn demand_floors_follow_formulas() {
        let cfg = EngineConfig::default();
        let page = cfg.page_size as f64;
        let mut small = hash_join(scan("a", 1_000.0, 100.0), scan("b", 10.0, 10.0), 10.0);
        small.assign_ids();
        let mut big = hash_join(scan("a", 100_000.0, 100.0), scan("b", 10.0, 10.0), 10.0);
        big.assign_ids();
        let d_small = demands(&small, &cfg)[0];
        let d_big = demands(&big, &cfg)[0];
        assert!(d_big.min > d_small.min, "floor grows with build size");
        let build_pages = (100_000.0 * 100.0 / page).max(1.0);
        let expected = ((build_pages.sqrt().ceil() + 1.0) * page) as usize;
        assert_eq!(d_big.min, expected);
    }

    /// A plan with no blocking operators yields no demands, and
    /// allocation over it trivially succeeds with the budget untouched.
    #[test]
    fn scan_only_plan_has_no_demands() {
        let cfg = EngineConfig::default();
        let mut plan = scan("t", 1_000.0, 100.0);
        plan.assign_ids();
        assert!(demands(&plan, &cfg).is_empty());
        let mm = MemoryManager::with_budget(1 << 20);
        let report = mm.allocate(&mut plan, &cfg).unwrap();
        assert!(report.grants.is_empty());
        assert_eq!(report.unused, mm.budget());
    }

    /// Demands respect postorder: the deepest consumer comes first, so
    /// greedy pass 2 favours operators that start executing earlier.
    #[test]
    fn demands_are_postorder() {
        let cfg = EngineConfig::default();
        let j1 = hash_join(scan("a", 1_000.0, 100.0), scan("b", 10.0, 10.0), 1_000.0);
        let mut j2 = hash_join(j1, scan("c", 10.0, 10.0), 1_000.0);
        j2.assign_ids();
        let ds = demands(&j2, &cfg);
        assert_eq!(ds.len(), 2);
        assert!(ds[0].node.0 > 0, "ids assigned");
        // j1 sits below j2, so it must be listed first.
        let j1_id = j2.children[0].id;
        assert_eq!(ds[0].node, j1_id);
        assert_eq!(ds[1].node, j2.id);
    }
}

#[cfg(test)]
mod lease_tests {
    use super::*;
    use crate::tests_support::*;

    /// A query admitted with a small lease grows it through the broker
    /// when allocation needs more — up to each operator's maximum.
    #[test]
    fn brokered_manager_grows_lease_for_demands() {
        let cfg = EngineConfig::default();
        let broker = MemoryBroker::new(16 << 20);
        let lease = broker.acquire(64 * 1024, 64 * 1024);
        let mm = MemoryManager::with_lease(lease);
        let mut plan = hash_join(scan("a", 10_000.0, 200.0), scan("b", 100.0, 10.0), 10_000.0);
        plan.assign_ids();
        let report = mm.allocate(&mut plan, &cfg).unwrap();
        let g = report.grants[0];
        assert_eq!(g.granted, g.max, "lease grew to cover the maximum");
        assert!(mm.budget() >= g.max);
        assert!(broker.in_use() <= broker.budget());
    }

    /// When concurrent queries hold the pool, growth is bounded: the
    /// allocation fails over minimums rather than over-committing, and
    /// succeeds once the hog releases.
    #[test]
    fn contended_broker_bounds_growth() {
        let cfg = EngineConfig::default();
        let broker = MemoryBroker::new(256 * 1024);
        let hog = broker.acquire(200 * 1024, 200 * 1024);
        let lease = broker.acquire(4 * 1024, 16 * 1024);
        let mm = MemoryManager::with_lease(lease);
        // Build side ≈ 2 MB: the grace-partitioning minimum (~96 KiB)
        // exceeds what the pool can spare while the hog lives.
        let mut plan = hash_join(scan("a", 10_000.0, 200.0), scan("b", 100.0, 10.0), 10_000.0);
        plan.assign_ids();
        let err = mm.allocate(&mut plan, &cfg).unwrap_err();
        assert_eq!(err.kind(), "oom");
        assert!(broker.in_use() <= broker.budget());

        drop(hog);
        let report = mm.allocate(&mut plan, &cfg).unwrap();
        let g = report.grants[0];
        assert!(g.granted >= g.min);
        assert!(broker.in_use() <= broker.budget());
        assert_eq!(broker.in_use(), mm.budget());
    }
}

#[cfg(test)]
mod tests_support {
    //! Shared plan-building helpers for this crate's tests.
    use mq_common::{DataType, Field, FileId, Schema};
    use mq_plan::{Annotation, CostEst, PhysOp, PhysPlan, ScanSpec};

    pub fn scan(name: &str, rows: f64, row_bytes: f64) -> PhysPlan {
        let mut p = PhysPlan::new(
            PhysOp::SeqScan {
                spec: ScanSpec {
                    table: name.into(),
                    file: FileId(0),
                    pages: 1,
                    rows: rows as u64,
                },
                filter: None,
            },
            vec![],
            Schema::new(vec![Field::qualified(name, "a", DataType::Int)]).unwrap(),
        );
        p.annot = Annotation {
            est_rows: rows,
            est_row_bytes: row_bytes,
            est_cost: CostEst::default(),
            est_time_ms: 0.0,
            est_total_time_ms: 0.0,
            mem_grant_bytes: 0,
        };
        p
    }

    pub fn hash_join(build: PhysPlan, probe: PhysPlan, out_rows: f64) -> PhysPlan {
        let schema = build.schema.join(&probe.schema);
        let mut p = PhysPlan::new(
            PhysOp::HashJoin {
                build_keys: vec![0],
                probe_keys: vec![0],
            },
            vec![build, probe],
            schema,
        );
        p.annot.est_rows = out_rows;
        p.annot.est_row_bytes = 40.0;
        p
    }
}
