//! The global memory broker: §2.3 extended across queries.
//!
//! Within one query the paper's memory manager divides a fixed budget
//! among operators, re-allocating mid-query as estimates improve. Under
//! a concurrent workload that per-query budget is itself a scarce
//! resource: the broker owns a single global budget and hands each
//! query a [`Lease`] at admission. A query that cannot even get its
//! *minimum* lease waits in FIFO order (admission control); a running
//! query whose memory manager wants more — a mid-query re-allocation or
//! a provisional-progress raise — asks its lease to [`Lease::grow`],
//! which succeeds only to the extent the global budget allows right
//! now. Dropping the lease returns every granted byte and wakes the
//! admission queue.
//!
//! The broker never over-commits: the sum of live grants is kept ≤ the
//! global budget at all times, and a monotone high-water mark records
//! the tightest the pool ever got (asserted by the concurrency tests).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared global-memory broker. Cloning shares the budget.
#[derive(Debug, Clone)]
pub struct MemoryBroker {
    inner: Arc<BrokerInner>,
}

#[derive(Debug)]
struct BrokerInner {
    budget: usize,
    state: Mutex<BrokerState>,
    admitted: Condvar,
}

#[derive(Debug, Default)]
struct BrokerState {
    /// Sum of all live grants.
    used: usize,
    /// Highest `used` ever observed.
    high_water: usize,
    /// Next admission ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to admit (FIFO fairness: later arrivals
    /// cannot starve an earlier query waiting for a large minimum).
    serving: u64,
}

/// One query's share of the global budget. Grows through the broker;
/// releases everything on drop.
#[derive(Debug)]
pub struct Lease {
    broker: MemoryBroker,
    granted: AtomicUsize,
}

impl MemoryBroker {
    /// Broker over `budget` bytes of global query memory.
    pub fn new(budget: usize) -> MemoryBroker {
        MemoryBroker {
            inner: Arc::new(BrokerInner {
                budget,
                state: Mutex::new(BrokerState::default()),
                admitted: Condvar::new(),
            }),
        }
    }

    /// The global budget in bytes.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Bytes currently granted across all live leases.
    pub fn in_use(&self) -> usize {
        self.lock().used
    }

    /// The largest total grant ever outstanding (monotone).
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Admit a query: blocks (FIFO) until at least `min` bytes are
    /// available, then grants up to `desired`. `min` must be ≤ the
    /// global budget or the query could never be admitted — in that
    /// case the request is clamped to the budget rather than deadlocking.
    pub fn acquire(&self, min: usize, desired: usize) -> Arc<Lease> {
        let min = min.min(self.inner.budget);
        // An injected grant denial is not an error: the query is still
        // admitted, but gets only its minimum — forcing the spill /
        // re-allocation machinery to cope, exactly like a stingy pool.
        let desired = if mq_common::fault::grant_allowed() {
            desired.max(min)
        } else {
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseDeny { site: "acquire" });
            min
        };
        let mut st = self.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        while st.serving != ticket || st.used + min > self.inner.budget {
            st = match self.inner.admitted.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        let grant = desired.min(self.inner.budget - st.used);
        st.used += grant;
        st.high_water = st.high_water.max(st.used);
        st.serving += 1;
        // The next ticket may also be admittable (we did not drain the
        // whole pool); wake the queue to find out.
        self.inner.admitted.notify_all();
        drop(st);
        mq_obs::emit(|| mq_obs::ObsEvent::LeaseAcquire {
            min_bytes: min as u64,
            desired_bytes: desired as u64,
            granted_bytes: grant as u64,
        });
        Arc::new(Lease {
            broker: self.clone(),
            granted: AtomicUsize::new(grant),
        })
    }

    /// Admit one partitioned query: `n` partition leases acquired
    /// **atomically** (all-or-nothing) under a single FIFO ticket.
    ///
    /// A partitioned job that acquired its per-partition leases one by
    /// one could interleave with another partitioned job and deadlock —
    /// each holding half its partitions' minimum while waiting for
    /// bytes the other holds. Taking one ticket and admitting only when
    /// `n × min` fits makes partition admission a single atomic step,
    /// so two partitioned jobs serialize instead of deadlocking.
    ///
    /// `min`/`desired` are per-partition; `n × min` is clamped to the
    /// budget like [`MemoryBroker::acquire`]. Returns `n` leases (the
    /// remaining desired bytes are spread evenly).
    pub fn acquire_group(&self, n: usize, min: usize, desired: usize) -> Vec<Arc<Lease>> {
        let n = n.max(1);
        let min_each = min.min(self.inner.budget / n);
        let desired_each = if mq_common::fault::grant_allowed() {
            desired.max(min_each)
        } else {
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseDeny { site: "acquire" });
            min_each
        };
        let mut st = self.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        while st.serving != ticket || st.used + n * min_each > self.inner.budget {
            st = match self.inner.admitted.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        let mut leases = Vec::with_capacity(n);
        let mut granted_total = 0usize;
        for _ in 0..n {
            let grant = desired_each.min(self.inner.budget - st.used);
            st.used += grant;
            st.high_water = st.high_water.max(st.used);
            granted_total += grant;
            leases.push(Arc::new(Lease {
                broker: self.clone(),
                granted: AtomicUsize::new(grant),
            }));
        }
        st.serving += 1;
        self.inner.admitted.notify_all();
        drop(st);
        mq_obs::emit(|| mq_obs::ObsEvent::LeaseAcquire {
            min_bytes: (n * min_each) as u64,
            desired_bytes: (n * desired_each) as u64,
            granted_bytes: granted_total as u64,
        });
        leases
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BrokerState> {
        match self.inner.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl Lease {
    /// Bytes currently granted to this lease.
    pub fn granted(&self) -> usize {
        self.granted.load(Ordering::Acquire)
    }

    /// Ask for up to `extra` more bytes, non-blocking. Returns the
    /// bytes actually added (possibly zero): a running query must make
    /// do with what the pool can spare *now* — blocking here would
    /// deadlock two growers waiting on each other. Growth also yields
    /// to the admission queue: while a query is waiting to be admitted,
    /// running queries may not grab the bytes it is waiting for.
    pub fn grow(&self, extra: usize) -> usize {
        if extra == 0 {
            return 0;
        }
        if !mq_common::fault::grant_allowed() {
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseDeny { site: "grow" });
            return 0;
        }
        let mut st = self.broker.lock();
        if st.next_ticket > st.serving {
            drop(st);
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseGrow {
                asked_bytes: extra as u64,
                granted_bytes: 0,
            });
            return 0;
        }
        let available = self.broker.inner.budget.saturating_sub(st.used);
        let add = extra.min(available);
        if add > 0 {
            st.used += add;
            st.high_water = st.high_water.max(st.used);
            self.granted.fetch_add(add, Ordering::AcqRel);
        }
        drop(st);
        mq_obs::emit(|| mq_obs::ObsEvent::LeaseGrow {
            asked_bytes: extra as u64,
            granted_bytes: add as u64,
        });
        add
    }

    /// Return `bytes` to the pool early (clamped to the grant).
    pub fn shrink(&self, bytes: usize) {
        let mut st = self.broker.lock();
        let cur = self.granted.load(Ordering::Acquire);
        let give_back = bytes.min(cur);
        if give_back > 0 {
            self.granted.store(cur - give_back, Ordering::Release);
            st.used = st.used.saturating_sub(give_back);
            drop(st);
            self.broker.inner.admitted.notify_all();
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let grant = self.granted.swap(0, Ordering::AcqRel);
        let mut st = self.broker.lock();
        st.used = st.used.saturating_sub(grant);
        drop(st);
        self.broker.inner.admitted.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn grants_track_budget_and_high_water() {
        let broker = MemoryBroker::new(1000);
        let a = broker.acquire(100, 600);
        assert_eq!(a.granted(), 600);
        let b = broker.acquire(100, 600);
        assert_eq!(b.granted(), 400, "clamped to what is left");
        assert_eq!(broker.in_use(), 1000);
        assert_eq!(broker.high_water(), 1000);
        drop(a);
        assert_eq!(broker.in_use(), 400);
        assert_eq!(broker.high_water(), 1000, "high water is monotone");
    }

    #[test]
    fn grow_is_clamped_and_shrink_returns() {
        let broker = MemoryBroker::new(1000);
        let a = broker.acquire(100, 700);
        let b = broker.acquire(100, 200);
        assert_eq!(a.grow(500), 100, "only 100 left in the pool");
        assert_eq!(a.granted(), 800);
        assert_eq!(a.grow(1), 0);
        b.shrink(150);
        assert_eq!(b.granted(), 50);
        assert_eq!(a.grow(500), 150);
        assert!(broker.in_use() <= broker.budget());
    }

    #[test]
    fn admission_blocks_until_memory_frees() {
        let broker = MemoryBroker::new(1000);
        let big = broker.acquire(900, 900);
        let b2 = broker.clone();
        let waiter = std::thread::spawn(move || {
            let lease = b2.acquire(500, 500);
            lease.granted()
        });
        // The waiter cannot be admitted while `big` holds 900.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "admission must queue");
        drop(big);
        assert_eq!(waiter.join().unwrap(), 500);
    }

    #[test]
    fn admission_is_fifo() {
        let broker = MemoryBroker::new(1000);
        let first = broker.acquire(800, 800);
        let b2 = broker.clone();
        // Queued: needs 700, only 200 free.
        let blocked = std::thread::spawn(move || b2.acquire(700, 700).granted());
        std::thread::sleep(Duration::from_millis(30));
        // A later small request must NOT jump the queue.
        let b3 = broker.clone();
        let small = std::thread::spawn(move || b3.acquire(50, 50).granted());
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !small.is_finished(),
            "FIFO: small arrival waits behind the big one"
        );
        drop(first);
        assert_eq!(blocked.join().unwrap(), 700);
        assert_eq!(small.join().unwrap(), 50);
    }

    #[test]
    fn grow_yields_to_admission_queue() {
        let broker = MemoryBroker::new(1000);
        let a = broker.acquire(100, 600);
        let b2 = broker.clone();
        // Queued: needs 600, only 400 free.
        let waiter = std::thread::spawn(move || b2.acquire(600, 600).granted());
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished());
        // `a` may not steal the bytes the waiter is queued for.
        assert_eq!(a.grow(400), 0, "growth must yield to waiting queries");
        drop(a);
        assert_eq!(waiter.join().unwrap(), 600);
    }

    #[test]
    fn injected_denials_clamp_but_never_fail() {
        use mq_common::fault::{FaultInjector, FaultKind, FaultSite, FaultSpec};
        let broker = MemoryBroker::new(1000);
        let spec = |at| FaultSpec {
            site: FaultSite::Grant,
            kind: FaultKind::Permanent,
            at,
        };
        // Grant decisions: #1 = acquire (denied), #2 = grow (denied),
        // #3 = grow (allowed).
        let inj = FaultInjector::new(vec![spec(1), spec(2)], None);
        let _scope = inj.enter_scope();
        let lease = broker.acquire(100, 600);
        assert_eq!(lease.granted(), 100, "denied acquire grants the minimum");
        assert_eq!(lease.grow(200), 0, "denied grow adds nothing");
        assert_eq!(lease.grow(200), 200, "later grows succeed again");
        drop(lease);
        assert_eq!(broker.in_use(), 0);
    }

    #[test]
    fn oversized_minimum_is_clamped_not_deadlocked() {
        let broker = MemoryBroker::new(100);
        let lease = broker.acquire(500, 500);
        assert_eq!(lease.granted(), 100);
    }

    #[test]
    fn group_acquire_is_all_or_nothing() {
        let broker = MemoryBroker::new(1000);
        let leases = broker.acquire_group(4, 100, 200);
        assert_eq!(leases.len(), 4);
        let total: usize = leases.iter().map(|l| l.granted()).sum();
        assert_eq!(total, 800);
        assert_eq!(broker.in_use(), 800);
        drop(leases);
        assert_eq!(broker.in_use(), 0);
    }

    /// Two partitioned jobs (4 partitions each) under a budget that
    /// fits only one job's minimum at a time. With per-partition
    /// acquires this interleaving deadlocks (each job holding ~half its
    /// partitions while waiting for the other's bytes); atomic group
    /// admission serializes the jobs instead.
    #[test]
    fn two_partitioned_jobs_under_tight_budget_never_deadlock() {
        // Budget fits exactly one job's 4 × 100 minimum.
        let broker = MemoryBroker::new(450);
        let mut threads = Vec::new();
        for _job in 0..2 {
            let b = broker.clone();
            threads.push(std::thread::spawn(move || {
                for _round in 0..20 {
                    let leases = b.acquire_group(4, 100, 110);
                    let total: usize = leases.iter().map(|l| l.granted()).sum();
                    assert!(total >= 400, "group admitted below its minimum: {total}");
                    assert!(b.in_use() <= b.budget());
                    std::thread::yield_now();
                    drop(leases);
                }
            }));
        }
        for t in threads {
            // A deadlock would hang the test harness; joining cleanly
            // is the assertion.
            t.join().unwrap();
        }
        assert_eq!(broker.in_use(), 0);
        assert!(broker.high_water() <= broker.budget());
    }

    #[test]
    fn group_acquire_queues_fifo_behind_singles() {
        let broker = MemoryBroker::new(1000);
        let first = broker.acquire(800, 800);
        let b2 = broker.clone();
        let group = std::thread::spawn(move || {
            let leases = b2.acquire_group(4, 150, 150);
            leases.iter().map(|l| l.granted()).sum::<usize>()
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!group.is_finished(), "group must wait for 4 × 150");
        drop(first);
        assert_eq!(group.join().unwrap(), 600);
    }
}
