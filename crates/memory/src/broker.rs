//! The global memory broker: §2.3 extended across queries.
//!
//! Within one query the paper's memory manager divides a fixed budget
//! among operators, re-allocating mid-query as estimates improve. Under
//! a concurrent workload that per-query budget is itself a scarce
//! resource: the broker owns a single global budget and hands each
//! query a [`Lease`] at admission. A query that cannot even get its
//! *minimum* lease waits in FIFO order (admission control); a running
//! query whose memory manager wants more — a mid-query re-allocation or
//! a provisional-progress raise — asks its lease to [`Lease::grow`],
//! which succeeds only to the extent the global budget allows right
//! now. Dropping the lease returns every granted byte and wakes the
//! admission queue.
//!
//! The broker never over-commits: the sum of live grants is kept ≤ the
//! global budget at all times, and a monotone high-water mark records
//! the tightest the pool ever got (asserted by the concurrency tests).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Shared global-memory broker. Cloning shares the budget.
#[derive(Debug, Clone)]
pub struct MemoryBroker {
    inner: Arc<BrokerInner>,
}

#[derive(Debug)]
struct BrokerInner {
    budget: usize,
    state: Mutex<BrokerState>,
    admitted: Condvar,
}

#[derive(Debug, Default)]
struct BrokerState {
    /// Sum of all live grants.
    used: usize,
    /// Highest `used` ever observed.
    high_water: usize,
    /// Next admission ticket to hand out.
    next_ticket: u64,
    /// Ticket currently allowed to admit (FIFO fairness: later arrivals
    /// cannot starve an earlier query waiting for a large minimum).
    serving: u64,
}

/// One query's share of the global budget. Grows through the broker;
/// releases everything on drop.
#[derive(Debug)]
pub struct Lease {
    broker: MemoryBroker,
    granted: AtomicUsize,
}

impl MemoryBroker {
    /// Broker over `budget` bytes of global query memory.
    pub fn new(budget: usize) -> MemoryBroker {
        MemoryBroker {
            inner: Arc::new(BrokerInner {
                budget,
                state: Mutex::new(BrokerState::default()),
                admitted: Condvar::new(),
            }),
        }
    }

    /// The global budget in bytes.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Bytes currently granted across all live leases.
    pub fn in_use(&self) -> usize {
        self.lock().used
    }

    /// The largest total grant ever outstanding (monotone).
    pub fn high_water(&self) -> usize {
        self.lock().high_water
    }

    /// Admit a query: blocks (FIFO) until at least `min` bytes are
    /// available, then grants up to `desired`. `min` must be ≤ the
    /// global budget or the query could never be admitted — in that
    /// case the request is clamped to the budget rather than deadlocking.
    pub fn acquire(&self, min: usize, desired: usize) -> Arc<Lease> {
        let min = min.min(self.inner.budget);
        // An injected grant denial is not an error: the query is still
        // admitted, but gets only its minimum — forcing the spill /
        // re-allocation machinery to cope, exactly like a stingy pool.
        let desired = if mq_common::fault::grant_allowed() {
            desired.max(min)
        } else {
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseDeny { site: "acquire" });
            min
        };
        let mut st = self.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        while st.serving != ticket || st.used + min > self.inner.budget {
            st = match self.inner.admitted.wait(st) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        let grant = desired.min(self.inner.budget - st.used);
        st.used += grant;
        st.high_water = st.high_water.max(st.used);
        st.serving += 1;
        // The next ticket may also be admittable (we did not drain the
        // whole pool); wake the queue to find out.
        self.inner.admitted.notify_all();
        drop(st);
        mq_obs::emit(|| mq_obs::ObsEvent::LeaseAcquire {
            min_bytes: min as u64,
            desired_bytes: desired as u64,
            granted_bytes: grant as u64,
        });
        Arc::new(Lease {
            broker: self.clone(),
            granted: AtomicUsize::new(grant),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BrokerState> {
        match self.inner.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl Lease {
    /// Bytes currently granted to this lease.
    pub fn granted(&self) -> usize {
        self.granted.load(Ordering::Acquire)
    }

    /// Ask for up to `extra` more bytes, non-blocking. Returns the
    /// bytes actually added (possibly zero): a running query must make
    /// do with what the pool can spare *now* — blocking here would
    /// deadlock two growers waiting on each other. Growth also yields
    /// to the admission queue: while a query is waiting to be admitted,
    /// running queries may not grab the bytes it is waiting for.
    pub fn grow(&self, extra: usize) -> usize {
        if extra == 0 {
            return 0;
        }
        if !mq_common::fault::grant_allowed() {
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseDeny { site: "grow" });
            return 0;
        }
        let mut st = self.broker.lock();
        if st.next_ticket > st.serving {
            drop(st);
            mq_obs::emit(|| mq_obs::ObsEvent::LeaseGrow {
                asked_bytes: extra as u64,
                granted_bytes: 0,
            });
            return 0;
        }
        let available = self.broker.inner.budget.saturating_sub(st.used);
        let add = extra.min(available);
        if add > 0 {
            st.used += add;
            st.high_water = st.high_water.max(st.used);
            self.granted.fetch_add(add, Ordering::AcqRel);
        }
        drop(st);
        mq_obs::emit(|| mq_obs::ObsEvent::LeaseGrow {
            asked_bytes: extra as u64,
            granted_bytes: add as u64,
        });
        add
    }

    /// Return `bytes` to the pool early (clamped to the grant).
    pub fn shrink(&self, bytes: usize) {
        let mut st = self.broker.lock();
        let cur = self.granted.load(Ordering::Acquire);
        let give_back = bytes.min(cur);
        if give_back > 0 {
            self.granted.store(cur - give_back, Ordering::Release);
            st.used = st.used.saturating_sub(give_back);
            drop(st);
            self.broker.inner.admitted.notify_all();
        }
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let grant = self.granted.swap(0, Ordering::AcqRel);
        let mut st = self.broker.lock();
        st.used = st.used.saturating_sub(grant);
        drop(st);
        self.broker.inner.admitted.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn grants_track_budget_and_high_water() {
        let broker = MemoryBroker::new(1000);
        let a = broker.acquire(100, 600);
        assert_eq!(a.granted(), 600);
        let b = broker.acquire(100, 600);
        assert_eq!(b.granted(), 400, "clamped to what is left");
        assert_eq!(broker.in_use(), 1000);
        assert_eq!(broker.high_water(), 1000);
        drop(a);
        assert_eq!(broker.in_use(), 400);
        assert_eq!(broker.high_water(), 1000, "high water is monotone");
    }

    #[test]
    fn grow_is_clamped_and_shrink_returns() {
        let broker = MemoryBroker::new(1000);
        let a = broker.acquire(100, 700);
        let b = broker.acquire(100, 200);
        assert_eq!(a.grow(500), 100, "only 100 left in the pool");
        assert_eq!(a.granted(), 800);
        assert_eq!(a.grow(1), 0);
        b.shrink(150);
        assert_eq!(b.granted(), 50);
        assert_eq!(a.grow(500), 150);
        assert!(broker.in_use() <= broker.budget());
    }

    #[test]
    fn admission_blocks_until_memory_frees() {
        let broker = MemoryBroker::new(1000);
        let big = broker.acquire(900, 900);
        let b2 = broker.clone();
        let waiter = std::thread::spawn(move || {
            let lease = b2.acquire(500, 500);
            lease.granted()
        });
        // The waiter cannot be admitted while `big` holds 900.
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished(), "admission must queue");
        drop(big);
        assert_eq!(waiter.join().unwrap(), 500);
    }

    #[test]
    fn admission_is_fifo() {
        let broker = MemoryBroker::new(1000);
        let first = broker.acquire(800, 800);
        let b2 = broker.clone();
        // Queued: needs 700, only 200 free.
        let blocked = std::thread::spawn(move || b2.acquire(700, 700).granted());
        std::thread::sleep(Duration::from_millis(30));
        // A later small request must NOT jump the queue.
        let b3 = broker.clone();
        let small = std::thread::spawn(move || b3.acquire(50, 50).granted());
        std::thread::sleep(Duration::from_millis(30));
        assert!(
            !small.is_finished(),
            "FIFO: small arrival waits behind the big one"
        );
        drop(first);
        assert_eq!(blocked.join().unwrap(), 700);
        assert_eq!(small.join().unwrap(), 50);
    }

    #[test]
    fn grow_yields_to_admission_queue() {
        let broker = MemoryBroker::new(1000);
        let a = broker.acquire(100, 600);
        let b2 = broker.clone();
        // Queued: needs 600, only 400 free.
        let waiter = std::thread::spawn(move || b2.acquire(600, 600).granted());
        std::thread::sleep(Duration::from_millis(30));
        assert!(!waiter.is_finished());
        // `a` may not steal the bytes the waiter is queued for.
        assert_eq!(a.grow(400), 0, "growth must yield to waiting queries");
        drop(a);
        assert_eq!(waiter.join().unwrap(), 600);
    }

    #[test]
    fn injected_denials_clamp_but_never_fail() {
        use mq_common::fault::{FaultInjector, FaultKind, FaultSite, FaultSpec};
        let broker = MemoryBroker::new(1000);
        let spec = |at| FaultSpec {
            site: FaultSite::Grant,
            kind: FaultKind::Permanent,
            at,
        };
        // Grant decisions: #1 = acquire (denied), #2 = grow (denied),
        // #3 = grow (allowed).
        let inj = FaultInjector::new(vec![spec(1), spec(2)], None);
        let _scope = inj.enter_scope();
        let lease = broker.acquire(100, 600);
        assert_eq!(lease.granted(), 100, "denied acquire grants the minimum");
        assert_eq!(lease.grow(200), 0, "denied grow adds nothing");
        assert_eq!(lease.grow(200), 200, "later grows succeed again");
        drop(lease);
        assert_eq!(broker.in_use(), 0);
    }

    #[test]
    fn oversized_minimum_is_clamped_not_deadlocked() {
        let broker = MemoryBroker::new(100);
        let lease = broker.acquire(500, 500);
        assert_eq!(lease.granted(), 100);
    }
}
