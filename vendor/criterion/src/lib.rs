//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The container has no network access to the crates registry, so this
//! vendored shim supplies the subset of criterion's API the workspace's
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. It times with
//! `std::time::Instant` and prints a one-line mean per benchmark — no
//! statistics, plots, or CLI filtering.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark manager handed to each `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; this shim has no CLI options.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, 10, f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.0), self.sample_size, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// End the group. (No summary output in the shim.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Identifier that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Passed to the benchmark closure; `iter` times the routine.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over this bencher's sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total.as_nanos() / b.iters as u128;
        println!("bench {name:<48} {mean:>12} ns/iter ({} iters)", b.iters);
    } else {
        println!("bench {name:<48} (no samples)");
    }
}

/// Defines a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_benches_run_and_accumulate() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("count", 7), &7u32, |b, &n| {
            b.iter(|| {
                runs += 1;
                n * 2
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn standalone_bench_function() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("standalone", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }
}
