//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this shim
//! provides the subset of the `parking_lot` API the workspace uses —
//! [`Mutex`], [`RwLock`] and [`Condvar`] — implemented over
//! `std::sync`. Semantics match `parking_lot` where it matters to
//! callers: locks do not poison (a panic while holding a guard simply
//! releases the lock for the next acquirer).

use std::fmt;
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only `None` transiently inside
/// [`Condvar::wait`], which must move the std guard out and back.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in a previous holder does not
    /// poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by Condvar::wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by Condvar::wait")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { inner }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable usable with this crate's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guarded mutex and block until notified,
    /// re-acquiring the lock before returning (spurious wakeups
    /// possible, as with any condvar).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken by Condvar::wait");
        let std_guard = match self.inner.wait(std_guard) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
