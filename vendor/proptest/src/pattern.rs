//! Regex-lite string generation.
//!
//! Supports the pattern shapes the workspace's tests use: a sequence
//! of atoms, each a character class `[a-zA-Z0-9 _-]`, a dot `.`
//! (printable ASCII), or a literal character, optionally followed by a
//! `{n}` / `{m,n}` repetition. Anything fancier is a bug in the test,
//! and panics loudly rather than silently generating garbage.

use crate::test_runner::TestRng;

#[derive(Debug)]
enum Atom {
    /// Inclusive character ranges (single chars are `c..=c`).
    Class(Vec<(char, char)>),
    /// `.` — printable ASCII.
    Dot,
}

#[derive(Debug)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for p in &pieces {
        let n = if p.min == p.max {
            p.min
        } else {
            p.min + rng.below((p.max - p.min + 1) as u64) as u32
        };
        for _ in 0..n {
            out.push(sample(&p.atom, rng));
        }
    }
    out
}

fn sample(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Dot => {
            // Printable ASCII, space through tilde.
            char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
        }
        Atom::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.below(total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).expect("class char");
                }
                pick -= span;
            }
            unreachable!("class sampling out of bounds")
        }
    }
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                    + i;
                let atom = parse_class(&chars[i + 1..close], pattern);
                i = close + 1;
                atom
            }
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 1;
                Atom::Class(vec![(c, c)])
            }
            c => {
                i += 1;
                Atom::Class(vec![(c, c)])
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"))
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n: u32 = spec.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition {{{min},{max}}} in {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn parse_class(body: &[char], pattern: &str) -> Atom {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let lo = match body[i] {
            '\\' => {
                i += 1;
                *body
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in class of {pattern:?}"))
            }
            c => c,
        };
        if body.get(i + 1) == Some(&'-') && i + 2 < body.len() {
            let hi = body[i + 2];
            assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
            ranges.push((lo, hi));
            i += 3;
        } else {
            ranges.push((lo, lo));
            i += 1;
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    Atom::Class(ranges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = generate("[a-zA-Z0-9 _-]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
        }
    }

    #[test]
    fn dot_is_printable() {
        let mut rng = TestRng::new(10);
        for _ in 0..100 {
            let s = generate(".{0,200}", &mut rng);
            assert!(s.len() <= 200);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn exact_repetition_and_literals() {
        let mut rng = TestRng::new(11);
        let s = generate("ab{3}[c]{2}", &mut rng);
        assert_eq!(s, "abbbcc");
    }

    #[test]
    fn bounds_are_inclusive() {
        let mut rng = TestRng::new(12);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..300 {
            lens.insert(generate("[a-z]{1,3}", &mut rng).len());
        }
        assert_eq!(lens, [1usize, 2, 3].into_iter().collect());
    }
}
