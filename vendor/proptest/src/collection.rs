//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length band for generated collections. `Range<usize>` keeps
/// proptest's half-open semantics (`0..12` → lengths 0..=11).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

/// `Vec` strategy: each element drawn independently from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vectors of `element` values with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_band() {
        let mut rng = TestRng::new(21);
        let s = vec(0i64..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0..10).contains(x)));
        }
    }

    #[test]
    fn fixed_size_from_usize() {
        let mut rng = TestRng::new(22);
        assert_eq!(vec(0i64..3, 4usize).generate(&mut rng).len(), 4);
    }
}
