//! The [`Strategy`] trait and the combinators the workspace uses.

use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// simply draws one value from the deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives a strategy for the
    /// levels below and builds the next level. `depth` bounds the
    /// nesting; the remaining real-proptest size parameters are
    /// accepted for signature compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Arc::new(move |inner| recurse(inner).boxed()),
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.below(self.depth as u64 + 1) as u32;
        let mut strat = self.base.clone();
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i64_in(self.start as i64, self.end as i64) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32);

// u64/usize get their own impls: casting their full range through i64
// would wrap.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.f64_in(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.f64_in(self.start as f64, self.end as f64) as f32
    }
}

/// String literals act as regex-lite pattern strategies
/// (`"[a-z]{1,8}"` → `String`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::pattern::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_maps() {
        let mut rng = TestRng::new(1);
        let s = (0i64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((0..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::new(2);
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed(), Just(3).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_terminates_and_nests() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> u32 {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(())
            .prop_map(|_| T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = TestRng::new(3);
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(depth(&strat.generate(&mut rng)));
        }
        assert!(max_seen >= 1, "recursion never fired");
        assert!(max_seen <= 3, "depth bound violated: {max_seen}");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::new(4);
        let s = (0i64..5, Just("x"), 0.0f64..1.0);
        let (a, b, c) = s.generate(&mut rng);
        assert!((0..5).contains(&a));
        assert_eq!(b, "x");
        assert!((0.0..1.0).contains(&c));
    }
}
