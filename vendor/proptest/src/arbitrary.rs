//! `any::<T>()` — full-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// A strategy over `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII with a sprinkle of wider code points; always valid.
        if rng.below(4) == 0 {
            char::from_u32(0x80 + rng.below(0xFFF) as u32).unwrap_or('\u{FFFD}')
        } else {
            char::from_u32(0x20 + rng.below(0x5F) as u32).expect("ascii")
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: most property tests that want NaN/inf ask
        // for them explicitly, and finite-by-default avoids poisoning
        // comparisons.
        rng.f64_in(-1e15, 1e15)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.f64_in(-1e6, 1e6) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_cover_domain_edges() {
        let mut rng = TestRng::new(31);
        let mut neg = false;
        let mut pos = false;
        for _ in 0..200 {
            let v: i64 = Arbitrary::arbitrary(&mut rng);
            neg |= v < 0;
            pos |= v > 0;
        }
        assert!(neg && pos, "sign coverage");
        for _ in 0..50 {
            assert!(f64::arbitrary(&mut rng).is_finite());
        }
    }
}
