//! Deterministic case runner: configuration, RNG, and failure type.

use std::fmt;

/// Per-block configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config { cases }
    }
}

/// A failed assertion inside a generated case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build a failure from a message.
    pub fn fail(message: String) -> TestCaseError {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Drives one `proptest!` test: knows the case count and hands out a
/// deterministic RNG per case (seeded from the test name, so every
/// test has an independent, reproducible stream).
pub struct TestRunner {
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Runner for the named test under `cfg`.
    pub fn new(cfg: Config, test_name: &str) -> TestRunner {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            cases: cfg.cases.max(1),
            seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG for one case.
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.seed ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// splitmix64 — tiny, fast, and plenty for test-input generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift bounded sampling; bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform signed integer in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo < hi);
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.below(span) as i64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name_and_case() {
        let r = TestRunner::new(Config::with_cases(10), "t");
        let mut a = r.rng_for(3);
        let mut b = r.rng_for(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = r.rng_for(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_sampling_in_range() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = rng.i64_in(-5, 7);
            assert!((-5..7).contains(&v));
            let f = rng.f64_in(0.25, 0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.below(3);
            assert!(u < 3);
        }
    }
}
