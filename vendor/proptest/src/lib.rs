//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim
//! re-implements the slice of proptest the workspace's property tests
//! actually use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies for ranges, tuples, `Just`, `any::<T>()`, regex-lite
//!   string patterns (`"[a-z]{1,8}"`, `".{0,200}"`), and
//!   [`collection::vec`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and
//!   [`prop_assert_eq!`] macros;
//! * a deterministic runner: each test draws `cases` inputs from a
//!   splitmix64 stream seeded by the test name (override the case
//!   count with the `PROPTEST_CASES` environment variable).
//!
//! Shrinking is intentionally not implemented — a failing case prints
//! its case number and message; re-running is deterministic, so the
//! failure reproduces exactly.

pub mod arbitrary;
pub mod collection;
pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the tests import via `use proptest::prelude::*`.
    /// `prop::collection::vec(...)`-style paths.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One generated test case failed; carries the assertion message.
pub use test_runner::TestCaseError;

/// Run every `#[test]` body against `cases` generated inputs.
///
/// Supported grammar (a strict subset of real proptest):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     /// docs…
///     #[test]
///     fn my_property(x in 0i64..100, mut v in some_strategy()) {
///         prop_assert!(x >= 0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::Config::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let runner = $crate::test_runner::TestRunner::new(cfg, stringify!($name));
                for case in 0..runner.cases() {
                    let mut prop_rng = runner.rng_for(case);
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, runner.cases(), e,
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (prop_l, prop_r) = (&$left, &$right);
        $crate::prop_assert!(
            *prop_l == *prop_r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), prop_l, prop_r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (prop_l, prop_r) = (&$left, &$right);
        $crate::prop_assert!(
            *prop_l == *prop_r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), prop_l, prop_r,
        );
    }};
}

/// Fail the current case unless both sides differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (prop_l, prop_r) = (&$left, &$right);
        $crate::prop_assert!(
            *prop_l != *prop_r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            prop_l,
        );
    }};
}
