//! Statistics feedback (§2.2's aside, implemented): "The statistics
//! collected during query execution can also be used to update the
//! statistics stored in the database catalogs."
//!
//! ```text
//! cargo run --release --example stats_feedback
//! ```
//!
//! Two engines hold identical data with a stale catalog: `fact` was
//! ANALYZEd, then grew 15% with a *different* value distribution
//! (every new row has `v = 0`), so the stored histogram on `v` badly
//! underestimates the predicate `v < 1`.
//!
//! Query A joins `fact` on `v` without any filter. On the feedback
//! engine, the SCIA notices the stale unfiltered scan, observes it, and
//! writes the true distribution back to the catalog (a few percent of
//! collection overhead). Query B — the classic indexed-nested-loops
//! trap — then runs in **Off mode** (no runtime re-optimization at
//! all): the stale engine walks into the trap; the healed engine plans
//! correctly from the start.

use midq::common::{DataType, DetRng, EngineConfig, Row, Value};
use midq::expr::{cmp, col, lit, CmpOp};
use midq::plan::PhysOp;
use midq::stats::HistogramKind;
use midq::{Engine, LogicalPlan, ReoptMode};

fn build(feedback: bool) -> midq::Result<Engine> {
    let cfg = EngineConfig {
        stats_feedback: feedback,
        ..EngineConfig::default()
    };
    let engine = Engine::new(cfg)?;
    let cat = engine.catalog();
    let st = engine.storage();
    cat.create_table(
        st,
        "fact",
        vec![
            ("fk1", DataType::Int),
            ("fk2", DataType::Int),
            ("v", DataType::Int),
        ],
    )?;
    cat.create_table(
        st,
        "dim1",
        vec![("pk", DataType::Int), ("x", DataType::Int)],
    )?;
    cat.create_table(
        st,
        "bigdim",
        vec![("pk", DataType::Int), ("payload", DataType::Int)],
    )?;
    // v uniform over 0..499 at ANALYZE time.
    for i in 0..20_000i64 {
        cat.insert_row(
            st,
            "fact",
            Row::new(vec![
                Value::Int(i % 100),
                Value::Int((i * 7919) % 60_000),
                Value::Int(i % 500),
            ]),
        )?;
    }
    for i in 0..600i64 {
        cat.insert_row(st, "dim1", Row::new(vec![Value::Int(i), Value::Int(i)]))?;
    }
    let mut pks: Vec<i64> = (0..60_000).collect();
    DetRng::new(0xB16D).shuffle(&mut pks);
    for (i, pk) in pks.into_iter().enumerate() {
        cat.insert_row(
            st,
            "bigdim",
            Row::new(vec![Value::Int(pk), Value::Int(i as i64 % 7)]),
        )?;
    }
    for t in ["fact", "dim1", "bigdim"] {
        cat.analyze(st, t, HistogramKind::MaxDiff, 16, 512, 11)?;
    }
    cat.create_index(st, "bigdim", "pk")?;
    // Post-ANALYZE drift: 3000 rows, all with v = 0.
    for i in 0..3000i64 {
        cat.insert_row(
            st,
            "fact",
            Row::new(vec![
                Value::Int(i % 100),
                Value::Int((i * 6133) % 60_000),
                Value::Int(0),
            ]),
        )?;
    }
    Ok(engine)
}

fn main() -> midq::Result<()> {
    // Query A: an unfiltered join over the stale table (any routine
    // report would do) — the feedback engine observes `fact` here.
    let query_a =
        LogicalPlan::scan("fact").join(LogicalPlan::scan("dim1"), vec![("fact.v", "dim1.pk")]);
    // Query B: `v < 1` is 100× more selective in the catalog than in
    // reality, which makes indexed nested loops into `bigdim` look
    // cheap. The Figure 4 trap.
    let query_b = LogicalPlan::scan_filtered("fact", cmp(CmpOp::Lt, col("fact.v"), lit(1i64)))
        .join(
            LogicalPlan::scan_filtered("dim1", cmp(CmpOp::Lt, col("dim1.x"), lit(40i64))),
            vec![("fact.fk1", "dim1.pk")],
        )
        .join(LogicalPlan::scan("bigdim"), vec![("fact.fk2", "bigdim.pk")]);

    println!("building two identical engines (fact: 20000 rows analyzed, then +3000 with v=0)…\n");
    println!(
        "{:<10} {:>14} {:>16} {:>18} {:>10}",
        "engine", "query A (ms)", "catalog v=0 est", "query B Off (ms)", "INL trap?"
    );
    for feedback in [false, true] {
        let engine = build(feedback)?;
        let a = engine.run(&query_a, ReoptMode::Full)?;

        // What the catalog now believes `v < 1` selects on fact: the
        // optimizer's estimate at the filtered scan of query B.
        let optimizer = midq::optimizer::Optimizer::new(engine.config().clone());
        let planned = optimizer.optimize(&query_b, engine.catalog(), engine.storage())?;
        let mut believed = f64::NAN;
        planned.plan.walk(&mut |n| {
            if let PhysOp::SeqScan {
                spec,
                filter: Some(_),
            } = &n.op
            {
                if spec.table == "fact" {
                    believed = n.annot.est_rows;
                }
            }
        });

        let b = engine.run(&query_b, ReoptMode::Off)?;
        let mut inl = false;
        b.final_plan.walk(&mut |n| {
            if matches!(n.op, PhysOp::IndexNLJoin { .. }) {
                inl = true;
            }
        });
        println!(
            "{:<10} {:>14.0} {:>16.0} {:>18.0} {:>10}",
            if feedback { "feedback" } else { "stale" },
            a.time_ms,
            believed,
            b.time_ms,
            if inl { "yes" } else { "avoided" },
        );
    }
    println!(
        "\nquery A pays a few percent of collection overhead on the feedback engine;\n\
         query B — with runtime re-optimization switched OFF — then avoids the\n\
         indexed-nested-loops trap because the catalog's histogram on fact.v is\n\
         fresh. Feedback turns one query's observations into every later query's\n\
         plan-time knowledge."
    );
    Ok(())
}
