//! Figures 4–6 walkthrough: mid-query plan modification.
//!
//! A fact table is analyzed, then grows with a *shifted* distribution:
//! the catalog's histogram still says the filter keeps a handful of
//! rows, so the optimizer picks an indexed nested-loops join into a
//! large unclustered dimension — catastrophic at the true cardinality.
//! A statistics collector on the filter (the build side of the first
//! hash join) observes the truth when that build completes; the
//! controller re-optimizes the remainder, materializes the running
//! join's output into a temp table (the completed hash build survives
//! the switch), and the rest of the query runs with a hash join
//! instead.
//!
//! ```text
//! cargo run --release --example plan_switch
//! ```

use midq::common::{DataType, DetRng, EngineConfig, Row, Value};
use midq::expr::{cmp, col, lit, CmpOp};
use midq::plan::PhysOp;
use midq::{Database, LogicalPlan, ReoptMode};

fn main() -> midq::Result<()> {
    let db = Database::new(EngineConfig::default())?;
    let st = db.engine().storage().clone();
    let cat = db.engine().catalog().clone();

    db.create_table(
        "fact",
        vec![
            ("fk1", DataType::Int),
            ("fk2", DataType::Int),
            ("v", DataType::Int),
        ],
    )?;
    db.create_table("dim1", vec![("pk", DataType::Int), ("x", DataType::Int)])?;
    db.create_table(
        "bigdim",
        vec![("pk", DataType::Int), ("payload", DataType::Int)],
    )?;

    println!("loading… (60k-row dimension in shuffled key order)");
    for i in 0..20_000i64 {
        db.insert(
            "fact",
            Row::new(vec![
                Value::Int(i % 100),
                Value::Int((i * 7919) % 60_000),
                Value::Int(i % 500),
            ]),
        )?;
    }
    for i in 0..600i64 {
        db.insert("dim1", Row::new(vec![Value::Int(i), Value::Int(i)]))?;
    }
    let mut pks: Vec<i64> = (0..60_000).collect();
    DetRng::new(0xB16D).shuffle(&mut pks);
    for (i, pk) in pks.into_iter().enumerate() {
        db.insert(
            "bigdim",
            Row::new(vec![Value::Int(pk), Value::Int(i as i64 % 7)]),
        )?;
    }
    for t in ["fact", "dim1", "bigdim"] {
        cat.analyze(&st, t, midq::stats::HistogramKind::MaxDiff, 16, 512, 11)?;
    }
    db.create_index("bigdim", "pk")?;

    // The distribution shift the catalog never saw: 2000 fresh rows,
    // all satisfying the benchmark filter.
    for i in 0..2_000i64 {
        db.insert(
            "fact",
            Row::new(vec![
                Value::Int(i % 100),
                Value::Int((i * 6133) % 60_000),
                Value::Int(0),
            ]),
        )?;
    }

    let q = LogicalPlan::scan_filtered("fact", cmp(CmpOp::Lt, col("fact.v"), lit(1i64)))
        .join(
            LogicalPlan::scan_filtered("dim1", cmp(CmpOp::Lt, col("dim1.x"), lit(40i64))),
            vec![("fact.fk1", "dim1.pk")],
        )
        .join(LogicalPlan::scan("bigdim"), vec![("fact.fk2", "bigdim.pk")]);

    println!("\n== the (sub-optimal) static plan ==\n{}", db.explain(&q)?);

    let off = db.query_plan(&q).mode(ReoptMode::Off).run()?;
    let full = db.query_plan(&q).mode(ReoptMode::Full).run()?;

    println!("== outcome ==");
    println!("static plan:        {:>9.1} ms", off.time_ms);
    println!(
        "re-optimized:       {:>9.1} ms   ({} plan switch(es))",
        full.time_ms, full.plan_switches
    );
    println!("speedup:            {:>9.2}×", off.time_ms / full.time_ms);

    println!("\n== controller events ==");
    for e in &full.events {
        println!("  {e}");
    }

    let mut inl = false;
    full.final_plan.walk(&mut |n| {
        if matches!(n.op, PhysOp::IndexNLJoin { .. }) {
            inl = true;
        }
    });
    println!(
        "\nfinal plan uses indexed nested loops: {inl}\n\n== final plan ==\n{}",
        full.final_plan
    );
    assert_eq!(off.rows.len(), full.rows.len(), "results must agree");
    Ok(())
}
