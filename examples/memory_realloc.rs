//! Figure 3 / §2.3 worked example: dynamic memory re-allocation.
//!
//! The optimizer *under*-estimates a correlated three-way filter 4×
//! (independence predicts 12.5%, the truth is 50%), so the second hash
//! join is granted a quarter of the memory it needs and would execute
//! "in two passes" (spill). The statistics collector after the filter
//! observes the true cardinality when the first join\'s build
//! completes; the controller re-invokes the memory manager and the
//! not-yet-started join is re-sized into the unused budget — watch the
//! `memory:` events below.
//!
//! ```text
//! cargo run --release --example memory_realloc
//! ```

use midq::common::{DataType, EngineConfig, Row, Value};
use midq::expr::{and, cmp, col, lit, CmpOp};
use midq::plan::{AggExpr, AggFunc};
use midq::{Database, LogicalPlan, ReoptMode};

fn main() -> midq::Result<()> {
    let cfg = EngineConfig {
        query_memory_bytes: 256 * 1024,
        buffer_pool_pages: 32,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg)?;

    db.create_table(
        "r",
        vec![
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("k", DataType::Int),
        ],
    )?;
    db.create_table("s", vec![("k", DataType::Int), ("m", DataType::Int)])?;
    db.create_table("t", vec![("m", DataType::Int), ("z", DataType::Int)])?;

    // a, b and c are perfectly correlated.
    for i in 0..4_000i64 {
        let a = i % 1_000;
        db.insert(
            "r",
            Row::new(vec![
                Value::Int(a),
                Value::Int(a),
                Value::Int(a),
                Value::Int(i % 2_000),
            ]),
        )?;
    }
    for i in 0..1_200i64 {
        db.insert("s", Row::new(vec![Value::Int(i), Value::Int(i % 50)]))?;
    }
    for i in 0..50i64 {
        db.insert("t", Row::new(vec![Value::Int(i), Value::Int(i % 10)]))?;
    }
    for name in ["r", "s", "t"] {
        db.engine().catalog().analyze(
            db.engine().storage(),
            name,
            midq::stats::HistogramKind::MaxDiff,
            16,
            512,
            5,
        )?;
    }

    let q = LogicalPlan::scan_filtered(
        "r",
        and(vec![
            cmp(CmpOp::Lt, col("r.a"), lit(500i64)),
            cmp(CmpOp::Lt, col("r.b"), lit(500i64)),
            cmp(CmpOp::Lt, col("r.c"), lit(500i64)),
        ]),
    )
    .join(LogicalPlan::scan("s"), vec![("r.k", "s.k")])
    .join(LogicalPlan::scan("t"), vec![("s.m", "t.m")])
    .aggregate(
        vec!["t.z"],
        vec![AggExpr {
            func: AggFunc::Count,
            arg: None,
            name: "n".into(),
        }],
    );

    println!("== static plan with its estimates ==\n{}", db.explain(&q)?);

    let off = db.query_plan(&q).mode(ReoptMode::Off).run()?;
    let mem = db.query_plan(&q).mode(ReoptMode::MemoryOnly).run()?;

    println!("== outcome ==");
    println!(
        "without re-optimization: {:>8.1} ms  ({} spill writes)",
        off.time_ms, off.cost.pages_written
    );
    println!(
        "memory-only mode:        {:>8.1} ms  ({} spill writes, {} re-allocation(s))",
        mem.time_ms, mem.cost.pages_written, mem.memory_reallocs
    );
    println!("\n== controller events (observe the grant re-sizing) ==");
    for e in &mem.events {
        println!("  {e}");
    }
    assert_eq!(off.rows.len(), mem.rows.len());
    assert!(mem.memory_reallocs >= 1);
    Ok(())
}
