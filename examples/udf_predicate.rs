//! The paper's object-relational motivation (§1): user-defined
//! predicates whose selectivity the optimizer cannot estimate at all
//! ("there is no way for the database system to estimate the
//! selectivity of the filter", footnote 2).
//!
//! A spatial-style UDF keeps 90 % of the probe-side rows, but the
//! optimizer can only guess its default (10 %). The statistics
//! collector after the filter observes the truth the moment the first
//! build completes, and the downstream joins are re-sized (or the plan
//! switched) before they drown.
//!
//! ```text
//! cargo run --release --example udf_predicate
//! ```

use midq::common::{DataType, EngineConfig, Row, Value};
use midq::expr::{col, Expr, Udf};
use midq::plan::{AggExpr, AggFunc};
use midq::{Database, LogicalPlan, ReoptMode};

fn main() -> midq::Result<()> {
    let cfg = EngineConfig {
        query_memory_bytes: 1024 * 1024,
        buffer_pool_pages: 32,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg)?;

    db.create_table(
        "parcels",
        vec![
            ("id", DataType::Int),
            ("region_code", DataType::Int),
            ("area", DataType::Float),
        ],
    )?;
    db.create_table(
        "regions",
        vec![("code", DataType::Int), ("zone", DataType::Int)],
    )?;
    db.create_table(
        "zones",
        vec![("zone", DataType::Int), ("name", DataType::Str)],
    )?;

    for i in 0..6_000i64 {
        db.insert(
            "parcels",
            Row::new(vec![
                Value::Int(i),
                Value::Int(i % 800),
                Value::Float((i % 977) as f64),
            ]),
        )?;
    }
    for i in 0..800i64 {
        db.insert("regions", Row::new(vec![Value::Int(i), Value::Int(i % 40)]))?;
    }
    for i in 0..40i64 {
        db.insert(
            "zones",
            Row::new(vec![Value::Int(i), Value::str(format!("zone-{i}"))]),
        )?;
    }
    for t in ["parcels", "regions", "zones"] {
        db.analyze(t)?;
    }

    // `inside_survey_area(area)` — an opaque spatial predicate that
    // actually keeps ~90 % of the parcels; the optimizer guesses 10 %.
    let udf_filter = Expr::UdfPred {
        name: "inside_survey_area".into(),
        arg: Box::new(col("parcels.area")),
        udf: Udf::HashFraction {
            keep_fraction: 0.9,
            salt: 42,
        },
    };

    let q = LogicalPlan::scan_filtered("parcels", udf_filter)
        .join(
            LogicalPlan::scan("regions"),
            vec![("parcels.region_code", "regions.code")],
        )
        .join(
            LogicalPlan::scan("zones"),
            vec![("regions.zone", "zones.zone")],
        )
        .aggregate(
            vec!["zones.name"],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
                name: "parcel_count".into(),
            }],
        );

    println!(
        "== the plan, sized for a 10% UDF guess ==\n{}",
        db.explain(&q)?
    );

    let off = db.query_plan(&q).mode(ReoptMode::Off).run()?;
    let full = db.query_plan(&q).mode(ReoptMode::Full).run()?;

    println!("== outcome ==");
    println!(
        "static plan:   {:>9.1} ms  ({} spill writes)",
        off.time_ms, off.cost.pages_written
    );
    println!(
        "re-optimized:  {:>9.1} ms  ({} spill writes, {} re-allocations, {} switches)",
        full.time_ms, full.cost.pages_written, full.memory_reallocs, full.plan_switches
    );
    println!("\n== controller events ==");
    for e in &full.events {
        println!("  {e}");
    }
    assert_eq!(off.rows.len(), full.rows.len());
    Ok(())
}
