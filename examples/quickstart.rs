//! Quickstart: create tables, load rows, run SQL, and watch Dynamic
//! Re-Optimization report what it observed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use midq::common::{DataType, EngineConfig, Row, Value};
use midq::{Database, ReoptMode};

fn main() -> midq::Result<()> {
    let db = Database::new(EngineConfig::default())?;

    // DDL + load.
    db.create_table(
        "users",
        vec![
            ("id", DataType::Int),
            ("country", DataType::Str),
            ("age", DataType::Int),
        ],
    )?;
    db.create_table(
        "orders",
        vec![
            ("user_id", DataType::Int),
            ("amount", DataType::Float),
            ("item", DataType::Str),
        ],
    )?;
    let countries = ["DE", "FR", "US", "JP", "BR"];
    for i in 0..2_000i64 {
        db.insert(
            "users",
            Row::new(vec![
                Value::Int(i),
                Value::str(countries[(i % 5) as usize]),
                Value::Int(18 + i % 60),
            ]),
        )?;
    }
    for i in 0..10_000i64 {
        db.insert(
            "orders",
            Row::new(vec![
                Value::Int(i % 2_000),
                Value::Float((i % 500) as f64 + 0.99),
                Value::str(if i % 3 == 0 { "book" } else { "tool" }),
            ]),
        )?;
    }
    db.analyze("users")?;
    db.analyze("orders")?;

    // EXPLAIN shows the annotated plan — the optimizer's estimates the
    // runtime statistics will be compared against.
    let plan = db.plan_sql(
        "SELECT country, count(*) AS n, avg(amount) AS avg_amount \
         FROM users, orders \
         WHERE id = user_id AND age < 30 AND item = 'book' \
         GROUP BY country ORDER BY n DESC",
    )?;
    println!("== EXPLAIN ==\n{}", db.explain(&plan)?);

    // Run with the full Dynamic Re-Optimization pipeline.
    let outcome = db.query_plan(&plan).mode(ReoptMode::Full).run()?;
    println!("== RESULTS ({} rows) ==", outcome.rows.len());
    for row in &outcome.rows {
        println!("  {row}");
    }
    println!(
        "\nsimulated time: {:.1} ms  (collector reports: {}, memory re-allocations: {}, plan switches: {})",
        outcome.time_ms, outcome.collector_reports, outcome.memory_reallocs, outcome.plan_switches
    );
    if !outcome.events.is_empty() {
        println!("\n== CONTROLLER EVENTS ==");
        for e in &outcome.events {
            println!("  {e}");
        }
    }
    Ok(())
}
