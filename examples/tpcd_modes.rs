//! The paper's benchmark in miniature: load TPC-D with a stale catalog
//! and run the seven queries under every re-optimization mode.
//!
//! ```text
//! cargo run --release --example tpcd_modes
//! ```

use midq::common::EngineConfig;
use midq::tpcd::{queries, TpcdConfig};
use midq::{Database, ReoptMode};

fn main() -> midq::Result<()> {
    let cfg = EngineConfig {
        buffer_pool_pages: 64,
        query_memory_bytes: 512 * 1024,
        ..EngineConfig::default()
    };
    let db = Database::new(cfg)?;
    println!("loading TPC-D (scale 0.004, ANALYZE at 50% of the load)…");
    let stats = db.load_tpcd(&TpcdConfig {
        scale: 0.004,
        analyze_after_fraction: 0.5,
        ..TpcdConfig::default()
    })?;
    println!(
        "  lineitem {} rows, orders {} rows, customer {} rows\n",
        stats.rows["lineitem"], stats.rows["orders"], stats.rows["customer"]
    );

    println!(
        "{:<5} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "query", "off(ms)", "mem-only", "plan-only", "full", "gain%"
    );
    for (name, q) in queries::all() {
        let off = db.query_plan(&q).mode(ReoptMode::Off).run()?;
        let mem = db.query_plan(&q).mode(ReoptMode::MemoryOnly).run()?;
        let plan = db.query_plan(&q).mode(ReoptMode::PlanOnly).run()?;
        let full = db.query_plan(&q).mode(ReoptMode::Full).run()?;
        println!(
            "{:<5} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>7.1}",
            name,
            off.time_ms,
            mem.time_ms,
            plan.time_ms,
            full.time_ms,
            (off.time_ms - full.time_ms) / off.time_ms * 100.0
        );
        assert_eq!(off.rows.len(), full.rows.len(), "{name} diverged");
    }
    println!("\n(classes per the paper: Q1/Q6 simple, Q3/Q10 medium, Q5/Q7/Q8 complex)");
    Ok(())
}
